//! Fig. 14: network-level execution time for inference and training.

use super::RunOptions;
use crate::networks::{self, LayerKind, LayerSpec, Network};
use crate::report::{Table, fmt_pct_plain};
use crate::{GpuConfig, GpuSim, layer_run_opts};
use duplo_conv::ConvParams;
use duplo_conv::transposed::TransposedConvParams;
use duplo_core::LhbConfig;
use duplo_kernels::{GemmTcKernel, SmemPolicy};

/// Network-level cycle totals.
#[derive(Clone, Debug)]
pub struct Row {
    /// Network name.
    pub network: Network,
    /// Inference cycles: baseline and Duplo.
    pub infer: (f64, f64),
    /// Training cycles (forward + dX + dW): baseline and Duplo.
    pub train: (f64, f64),
}

impl Row {
    /// Relative execution-time reduction for inference.
    pub fn infer_reduction(&self) -> f64 {
        1.0 - self.infer.1 / self.infer.0
    }

    /// Relative execution-time reduction for training.
    pub fn train_reduction(&self) -> f64 {
        1.0 - self.train.1 / self.train.0
    }
}

/// Backward data-gradient (`dX`) convolution of a layer: the transposed
/// convolution of `dY` with the (channel-swapped) filters. Its lowering
/// produces a duplicated workspace, so Duplo applies.
fn dx_conv(layer: &LayerSpec) -> Option<ConvParams> {
    match &layer.kind {
        LayerKind::Conv(p) => {
            let dy = p.output_shape();
            let t = TransposedConvParams::new(dy, p.input.c, p.fh, p.fw, p.pad, p.stride).ok()?;
            Some(t.equivalent_conv())
        }
        // Backward of a transposed conv is an ordinary strided conv on dY.
        LayerKind::Transposed(t) => {
            let dy = t.output_shape();
            ConvParams::new(dy, t.input.c, t.fh, t.fw, t.pad, t.stride).ok()
        }
    }
}

/// Weight-gradient (`dW`) GEMM dims: `M = fh*fw*C`, `N = filters`,
/// `K = N*OH*OW`. Its `A` operand is a *transposed* workspace in a separate
/// buffer — no duplication pattern the detection unit covers, so Duplo
/// gives no benefit (both configs run the same plain GEMM).
fn dw_dims(layer: &LayerSpec) -> (usize, usize, usize) {
    let p = layer.lowered();
    let (m, n, k) = p.gemm_dims();
    (k, n, m)
}

/// Per-layer cycle contributions, computed independently per layer so the
/// network fans out over the parallel runner.
struct LayerCycles {
    fwd: (f64, f64),
    dx: (f64, f64),
    dw: f64,
}

fn run_network(net: Network, opts: &RunOptions) -> Row {
    let gpu = opts.apply(GpuConfig::titan_v());
    let lhb = LhbConfig::paper_default();
    let layers = networks::layers_of(net);
    let jobs: Vec<(usize, &LayerSpec)> = layers.iter().enumerate().collect();
    let per_layer = crate::runner::par_map_opt(opts.threads, &jobs, |&(i, layer)| {
        let p = layer.lowered();
        let fwd = (
            layer_run_opts(&p, None, &gpu, opts).cycles,
            layer_run_opts(&p, Some(lhb), &gpu, opts).cycles,
        );
        // dX (skipped for the first layer, which needs no input gradient).
        let dx = match if i > 0 { dx_conv(layer) } else { None } {
            Some(dx) => (
                layer_run_opts(&dx, None, &gpu, opts).cycles,
                layer_run_opts(&dx, Some(lhb), &gpu, opts).cycles,
            ),
            None => (0.0, 0.0),
        };
        // dW: plain GEMM, no workspace; identical under both configs but
        // simulated once and charged to both.
        let (m, n, k) = dw_dims(layer);
        let kern = GemmTcKernel::new(m, n, k, SmemPolicy::COnly);
        let dw = GpuSim::with_options(gpu.clone(), opts.clone())
            .run(&kern)
            .cycles;
        LayerCycles { fwd, dx, dw }
    });

    // Sum in layer order: float addition is not associative, so the fold
    // order must not depend on worker completion order.
    let mut infer = (0.0, 0.0);
    let mut train = (0.0, 0.0);
    for lc in &per_layer {
        infer.0 += lc.fwd.0;
        infer.1 += lc.fwd.1;
        train.0 += lc.fwd.0;
        train.1 += lc.fwd.1;
        train.0 += lc.dx.0;
        train.1 += lc.dx.1;
        train.0 += lc.dw;
        train.1 += lc.dw;
    }
    Row {
        network: net,
        infer,
        train,
    }
}

/// Runs the network-level experiment for all three DNNs.
pub fn run(opts: &RunOptions) -> Vec<Row> {
    Network::ALL.iter().map(|n| run_network(*n, opts)).collect()
}

/// Structured result: network-level cycle totals and reductions.
pub fn result(rows: &[Row], opts: &RunOptions) -> crate::results::ExperimentResult {
    use crate::json::Json;
    use crate::results::{ExperimentResult, opts_json};
    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .field("network", r.network.to_string())
                .field("infer_baseline_cycles", r.infer.0)
                .field("infer_duplo_cycles", r.infer.1)
                .field("infer_reduction", r.infer_reduction())
                .field("train_baseline_cycles", r.train.0)
                .field("train_duplo_cycles", r.train.1)
                .field("train_reduction", r.train_reduction())
                .build()
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let summary = Json::obj()
        .field(
            "mean_infer_reduction",
            rows.iter().map(Row::infer_reduction).sum::<f64>() / n,
        )
        .field(
            "mean_train_reduction",
            rows.iter().map(Row::train_reduction).sum::<f64>() / n,
        )
        .field(
            "total_cycles",
            rows.iter().map(|r| r.train.0 + r.train.1).sum::<f64>(),
        )
        .build();
    ExperimentResult::new(
        "fig14_network",
        "Fig. 14 — network execution time reduction",
        opts_json(opts),
        json_rows,
        summary,
    )
}

/// Renders the Fig. 14 table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(
        "Fig. 14 — network execution time reduction (baseline -> Duplo)",
        &["network", "inference", "training"],
    );
    for r in rows {
        t.push_row(vec![
            r.network.to_string(),
            fmt_pct_plain(r.infer_reduction()),
            fmt_pct_plain(r.train_reduction()),
        ]);
    }
    let gi: f64 = rows.iter().map(|r| r.infer_reduction()).sum::<f64>() / rows.len() as f64;
    let gt: f64 = rows.iter().map(|r| r.train_reduction()).sum::<f64>() / rows.len() as f64;
    t.push_row(vec!["mean".into(), fmt_pct_plain(gi), fmt_pct_plain(gt)]);
    t.note("paper: inference -22.7%, training -8.3% (training adds dX/dW GEMMs with less/no duplication)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;

    #[test]
    fn dx_of_stride1_conv_preserves_input_shape() {
        let l = &networks::yolo()[2]; // 56x56x64 -> 128, s1 p1
        let dx = dx_conv(l).unwrap();
        assert_eq!(dx.output_shape(), l.lowered().input);
    }

    #[test]
    fn dw_dims_swap_m_and_k() {
        let l = &networks::resnet()[1];
        let (m, n, k) = dw_dims(l);
        assert_eq!(m, 3 * 3 * 64);
        assert_eq!(n, 64);
        assert_eq!(k, 8 * 56 * 56);
    }

    #[test]
    fn training_gains_below_inference_gains() {
        // One cheap network-level check with heavy sampling: YOLO.
        let row = run_network(Network::Yolo, &RunOptions::quick());
        assert!(row.infer_reduction() > 0.0, "inference must improve");
        assert!(
            row.train_reduction() <= row.infer_reduction() + 1e-9,
            "training ({:.3}) cannot beat inference ({:.3}) — dW has no duplication",
            row.train_reduction(),
            row.infer_reduction()
        );
    }
}
