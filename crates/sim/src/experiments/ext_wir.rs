//! Extension study: Duplo versus WIR-style same-address reuse (§IV-B).
//!
//! The paper distinguishes Duplo from prior instruction-elimination work
//! (e.g. warp instruction reuse, Kim & Ro, paper ref. 15) by its ability to eliminate
//! loads of duplicate data at *different* addresses. This experiment makes
//! the comparison quantitative: the same buffer, keyed by address (WIR)
//! versus keyed by workspace identity (Duplo).

use super::{RunOptions, table1_layers};
use crate::report::{Table, fmt_pct, fmt_pct_opt, fmt_pct_plain, gmean};
use crate::{GpuConfig, layer_run_opts};
use duplo_core::LhbConfig;

/// One layer's Duplo-vs-WIR comparison.
#[derive(Clone, Debug)]
pub struct Row {
    /// Layer name.
    pub layer: String,
    /// WIR improvement over baseline.
    pub wir_improvement: f64,
    /// Duplo improvement over baseline.
    pub duplo_improvement: f64,
    /// WIR elimination rate (fraction of tensor rows).
    pub wir_elimination: f64,
    /// Duplo elimination rate.
    pub duplo_elimination: f64,
}

/// Runs the comparison (1024 entries each).
pub fn run(opts: &RunOptions) -> Vec<Row> {
    let gpu = opts.apply(GpuConfig::titan_v());
    table1_layers()
        .iter()
        .map(|l| {
            let p = l.lowered();
            let base = layer_run_opts(&p, None, &gpu, opts);
            let wir = layer_run_opts(&p, Some(LhbConfig::wir(1024)), &gpu, opts);
            let duplo = layer_run_opts(&p, Some(LhbConfig::direct_mapped(1024)), &gpu, opts);
            Row {
                layer: l.qualified_name(),
                wir_improvement: base.cycles / wir.cycles - 1.0,
                duplo_improvement: base.cycles / duplo.cycles - 1.0,
                wir_elimination: wir.stats.elimination_rate(),
                duplo_elimination: duplo.stats.elimination_rate(),
            }
        })
        .collect()
}

/// Structured result: per-layer WIR-vs-Duplo comparison.
pub fn result(rows: &[Row], opts: &RunOptions) -> crate::results::ExperimentResult {
    use crate::json::Json;
    use crate::results::{ExperimentResult, opts_json};
    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .field("layer", r.layer.as_str())
                .field("wir_improvement", r.wir_improvement)
                .field("duplo_improvement", r.duplo_improvement)
                .field("wir_elimination", r.wir_elimination)
                .field("duplo_elimination", r.duplo_elimination)
                .build()
        })
        .collect();
    let gw: Vec<f64> = rows.iter().map(|r| 1.0 + r.wir_improvement).collect();
    let gd: Vec<f64> = rows.iter().map(|r| 1.0 + r.duplo_improvement).collect();
    let summary = Json::obj()
        .field("gmean_wir_improvement", gmean(&gw).map(|g| g - 1.0))
        .field("gmean_duplo_improvement", gmean(&gd).map(|g| g - 1.0))
        .build();
    ExperimentResult::new(
        "ext_wir",
        "Ext — Duplo vs WIR-style same-address elimination",
        opts_json(opts),
        json_rows,
        summary,
    )
}

/// Renders the comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(
        "EXT — Duplo vs WIR-style same-address elimination (1024 entries)",
        &["layer", "WIR perf", "Duplo perf", "WIR elim", "Duplo elim"],
    );
    for r in rows {
        t.push_row(vec![
            r.layer.clone(),
            fmt_pct(r.wir_improvement),
            fmt_pct(r.duplo_improvement),
            fmt_pct_plain(r.wir_elimination),
            fmt_pct_plain(r.duplo_elimination),
        ]);
    }
    let gw: Vec<f64> = rows.iter().map(|r| 1.0 + r.wir_improvement).collect();
    let gd: Vec<f64> = rows.iter().map(|r| 1.0 + r.duplo_improvement).collect();
    t.push_row(vec![
        "gmean".into(),
        fmt_pct_opt(gmean(&gw).map(|g| g - 1.0)),
        fmt_pct_opt(gmean(&gd).map(|g| g - 1.0)),
        String::new(),
        String::new(),
    ]);
    t.note("§IV-B: prior techniques only catch repeated loads of the same address");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer_run;
    use crate::networks;

    #[test]
    fn duplo_eliminates_more_than_wir() {
        let opts = RunOptions {
            sample_ctas: Some(3),
            ..RunOptions::default()
        };
        let gpu = opts.apply(GpuConfig::titan_v());
        let p = networks::resnet()[1].lowered();
        let wir = layer_run(&p, Some(LhbConfig::wir(1024)), &gpu);
        let duplo = layer_run(&p, Some(LhbConfig::direct_mapped(1024)), &gpu);
        assert!(
            duplo.stats.eliminated_loads > wir.stats.eliminated_loads,
            "Duplo ({}) must eliminate more than WIR ({})",
            duplo.stats.eliminated_loads,
            wir.stats.eliminated_loads
        );
        // WIR still catches cross-warp same-address fragment loads.
        assert!(
            wir.stats.eliminated_loads > 0,
            "WIR should catch same-address reuse"
        );
    }
}
