//! Generated workload library beyond the paper's two GEMM shapes.
//!
//! ROADMAP item 2's workload half: attention GEMM chains, batched small
//! GEMMs, grouped/depthwise convolution, the kn2row low-memory lowering
//! ("Low-memory GEMM-based convolution algorithms", PAPERS.md), and an
//! adversarial memory-bound streaming kernel ("Can Tensor Cores Benefit
//! Memory-Bound Kernels? (No!)", PAPERS.md). Each is a registry
//! experiment, so all of them record and replay through
//! [`crate::wtrace`] like the paper figures.
//!
//! The adversarial entries pin down when Duplo must *not* help: kernels
//! with no lowered-convolution workspace (attention, streaming) leave the
//! detection unit power-gated, so their Duplo speedup is exactly 1.0.

use super::RunOptions;
use crate::json::Json;
use crate::report::{Table, fmt_pct_plain, gmean};
use crate::results::{ExperimentResult, opts_json};
use crate::{GpuConfig, GpuRunResult, GpuSim};
use duplo_conv::ConvParams;
use duplo_core::LhbConfig;
use duplo_isa::Kernel;
use duplo_kernels::{GemmTcKernel, SmemPolicy, StreamKernel};
use duplo_tensor::Nhwc;

/// One workload item: a kernel simulated baseline-vs-Duplo, scaled by how
/// many identical launches the item stands for (batch entries, attention
/// heads, convolution groups, kn2row's per-filter-offset GEMMs).
#[derive(Clone, Debug)]
pub struct WlRow {
    /// Item label within the workload.
    pub item: String,
    /// Kernel name.
    pub kernel: String,
    /// Identical launches this row stands for (pure cycle scaling).
    pub launches: usize,
    /// Total baseline cycles (per-launch cycles × launches).
    pub base_cycles: f64,
    /// Total Duplo cycles.
    pub duplo_cycles: f64,
    /// LHB hit rate of the Duplo run.
    pub lhb_hit_rate: f64,
    /// Row-segment elimination rate of the Duplo run.
    pub elimination: f64,
}

impl WlRow {
    /// Duplo speedup (`baseline / duplo`; 1.0 = no effect).
    pub fn speedup(&self) -> f64 {
        self.base_cycles / self.duplo_cycles
    }
}

/// Simulates every kernel twice — baseline (LHB off) and Duplo (paper
/// default LHB) — fanning the whole grid out over the runner pool, then
/// folds each `(item, launches)` descriptor with its pair into a row.
fn run_rows(
    items: &[(String, usize)],
    kernels: &[Box<dyn Kernel>],
    gpu: &GpuConfig,
    opts: &RunOptions,
) -> Vec<WlRow> {
    assert_eq!(items.len(), kernels.len());
    let jobs: Vec<(usize, bool)> = (0..kernels.len())
        .flat_map(|i| [(i, false), (i, true)])
        .collect();
    let results: Vec<GpuRunResult> =
        crate::runner::par_map_opt(opts.threads, &jobs, |&(i, duplo)| {
            let mut cfg = gpu.clone();
            cfg.sm.lhb = duplo.then(LhbConfig::paper_default);
            GpuSim::with_options(cfg, opts.clone()).run(kernels[i].as_ref())
        });
    let mut it = results.into_iter();
    items
        .iter()
        .zip(kernels)
        .map(|((item, launches), kernel)| {
            let base = it.next().expect("one baseline run per kernel");
            let duplo = it.next().expect("one Duplo run per kernel");
            WlRow {
                item: item.clone(),
                kernel: kernel.name().to_string(),
                launches: *launches,
                base_cycles: base.cycles * *launches as f64,
                duplo_cycles: duplo.cycles * *launches as f64,
                lhb_hit_rate: duplo.stats.lhb.hit_rate(),
                elimination: duplo.stats.elimination_rate(),
            }
        })
        .collect()
}

/// Shared structured result for every workload in this module.
fn result_rows(
    name: &'static str,
    title: &'static str,
    rows: &[WlRow],
    opts: &RunOptions,
) -> ExperimentResult {
    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .field("item", r.item.as_str())
                .field("kernel", r.kernel.as_str())
                .field("launches", r.launches)
                .field("base_cycles", r.base_cycles)
                .field("duplo_cycles", r.duplo_cycles)
                .field("speedup", r.speedup())
                .field("lhb_hit_rate", r.lhb_hit_rate)
                .field("elimination", r.elimination)
                .build()
        })
        .collect();
    let sp: Vec<f64> = rows.iter().map(WlRow::speedup).collect();
    let summary = Json::obj().field("gmean_speedup", gmean(&sp)).build();
    ExperimentResult::new(name, title, opts_json(opts), json_rows, summary)
}

/// Shared summary table for every workload in this module.
fn render_rows(title: &str, note: &str, rows: &[WlRow]) -> String {
    let mut t = Table::new(
        title,
        &[
            "item",
            "kernel",
            "n",
            "base cyc",
            "duplo cyc",
            "speedup",
            "LHB hits",
            "elim",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.item.clone(),
            r.kernel.clone(),
            r.launches.to_string(),
            format!("{:.0}", r.base_cycles),
            format!("{:.0}", r.duplo_cycles),
            format!("{:.2}x", r.speedup()),
            fmt_pct_plain(r.lhb_hit_rate),
            fmt_pct_plain(r.elimination),
        ]);
    }
    let sp: Vec<f64> = rows.iter().map(WlRow::speedup).collect();
    t.push_row(vec![
        "gmean".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        gmean(&sp).map_or("-".into(), |g| format!("{g:.2}x")),
        String::new(),
        String::new(),
    ]);
    t.note(note);
    t.render()
}

/// Attention GEMM chain: one transformer head's `Q·Kᵀ` and `P·V` GEMMs,
/// scaled to 8 heads. Plain GEMMs with no lowered workspace — adversarial
/// for Duplo, whose detection unit stays power-gated (speedup 1.0).
pub mod attention {
    use super::*;

    /// Registry name.
    pub const NAME: &str = "wl_attention";
    /// Registry title.
    pub const TITLE: &str = "WL — attention GEMM chain (no workspace: Duplo inert)";
    const HEADS: usize = 8;

    /// Runs the workload.
    pub fn run(opts: &RunOptions) -> Vec<WlRow> {
        let gpu = opts.apply(GpuConfig::titan_v());
        // seq=128, d_head=64: scores = Q(128x64)·Kᵀ(64x128), out = P(128x128)·V(128x64).
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(GemmTcKernel::new(128, 128, 64, SmemPolicy::COnly)),
            Box::new(GemmTcKernel::new(128, 64, 128, SmemPolicy::COnly)),
        ];
        let items = vec![
            ("Q.K^T per head".to_string(), HEADS),
            ("P.V per head".to_string(), HEADS),
        ];
        run_rows(&items, &kernels, &gpu, opts)
    }

    /// Structured result.
    pub fn result(rows: &[WlRow], opts: &RunOptions) -> ExperimentResult {
        result_rows(NAME, TITLE, rows, opts)
    }

    /// Summary table.
    pub fn render(rows: &[WlRow]) -> String {
        render_rows(
            TITLE,
            "no convolution workspace -> LHB power-gated, speedup exactly 1.0",
            rows,
        )
    }
}

/// Batched small convolution GEMMs: lowered 3×3 layers small enough that
/// a kernel's whole workspace is LHB-resident reuse distance — the shapes
/// cuDNN batches rather than runs one-by-one.
pub mod batched {
    use super::*;

    /// Registry name.
    pub const NAME: &str = "wl_batched_gemm";
    /// Registry title.
    pub const TITLE: &str = "WL — batched small convolution GEMMs";

    /// Runs the workload.
    pub fn run(opts: &RunOptions) -> Vec<WlRow> {
        let gpu = opts.apply(GpuConfig::titan_v());
        let layers = [
            (Nhwc::new(8, 14, 14, 32), 64usize),
            (Nhwc::new(4, 14, 14, 48), 96),
            (Nhwc::new(16, 7, 7, 32), 64),
        ];
        let mut items = Vec::new();
        let mut kernels: Vec<Box<dyn Kernel>> = Vec::new();
        for (input, filters) in layers {
            let p = ConvParams::new(input, filters, 3, 3, 1, 1)
                .expect("workload layer shapes are valid");
            items.push((
                format!(
                    "b{} {}x{}x{} -> {}",
                    input.n, input.h, input.w, input.c, filters
                ),
                1,
            ));
            kernels.push(Box::new(GemmTcKernel::from_conv(&p, SmemPolicy::COnly)));
        }
        run_rows(&items, &kernels, &gpu, opts)
    }

    /// Structured result.
    pub fn result(rows: &[WlRow], opts: &RunOptions) -> ExperimentResult {
        result_rows(NAME, TITLE, rows, opts)
    }

    /// Summary table.
    pub fn render(rows: &[WlRow]) -> String {
        render_rows(
            TITLE,
            "small lowered GEMMs: the whole workspace fits the LHB reuse window",
            rows,
        )
    }
}

/// Grouped and depthwise convolution: one 14×14, C=64→64 3×3 layer at
/// group counts 1/4/16/64. Groups are independent convolutions of C/G
/// channels; one group is simulated and cycles scale by G.
pub mod grouped {
    use super::*;

    /// Registry name.
    pub const NAME: &str = "wl_grouped_conv";
    /// Registry title.
    pub const TITLE: &str = "WL — grouped/depthwise convolution (G = 1..64)";

    /// Runs the workload.
    pub fn run(opts: &RunOptions) -> Vec<WlRow> {
        let gpu = opts.apply(GpuConfig::titan_v());
        let mut items = Vec::new();
        let mut kernels: Vec<Box<dyn Kernel>> = Vec::new();
        for g in [1usize, 4, 16, 64] {
            let p = ConvParams::new(Nhwc::new(4, 14, 14, 64 / g), 64 / g, 3, 3, 1, 1)
                .expect("workload layer shapes are valid");
            let label = if g == 64 {
                "G=64 (depthwise)".to_string()
            } else {
                format!("G={g}")
            };
            items.push((label, g));
            kernels.push(Box::new(GemmTcKernel::from_conv(&p, SmemPolicy::COnly)));
        }
        run_rows(&items, &kernels, &gpu, opts)
    }

    /// Structured result.
    pub fn result(rows: &[WlRow], opts: &RunOptions) -> ExperimentResult {
        result_rows(NAME, TITLE, rows, opts)
    }

    /// Summary table.
    pub fn render(rows: &[WlRow]) -> String {
        render_rows(
            TITLE,
            "per-group K dim shrinks with G: depthwise leaves little to eliminate",
            rows,
        )
    }
}

/// kn2row lowering vs im2col: one 28×28, C=64→64 3×3 layer either as one
/// im2col GEMM (9× duplicated workspace) or as kn2row's nine 1×1-GEMM
/// passes over the unexpanded input (duplication factor 1).
pub mod kn2row {
    use super::*;

    /// Registry name.
    pub const NAME: &str = "wl_kn2row";
    /// Registry title.
    pub const TITLE: &str = "WL — kn2row lowering vs im2col";

    /// Runs the workload.
    pub fn run(opts: &RunOptions) -> Vec<WlRow> {
        let gpu = opts.apply(GpuConfig::titan_v());
        let input = Nhwc::new(4, 28, 28, 64);
        let im2col =
            ConvParams::new(input, 64, 3, 3, 1, 1).expect("workload layer shapes are valid");
        // kn2row: one K=C GEMM per filter offset, 3*3 of them, each over
        // the unexpanded input (a 1x1 convolution's workspace).
        let one_by_one =
            ConvParams::new(input, 64, 1, 1, 0, 1).expect("workload layer shapes are valid");
        let items = vec![
            ("im2col 3x3".to_string(), 1),
            ("kn2row 9 x 1x1".to_string(), 9),
        ];
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(GemmTcKernel::from_conv(&im2col, SmemPolicy::COnly)),
            Box::new(GemmTcKernel::from_conv(&one_by_one, SmemPolicy::COnly)),
        ];
        run_rows(&items, &kernels, &gpu, opts)
    }

    /// Structured result.
    pub fn result(rows: &[WlRow], opts: &RunOptions) -> ExperimentResult {
        result_rows(NAME, TITLE, rows, opts)
    }

    /// Summary table.
    pub fn render(rows: &[WlRow]) -> String {
        render_rows(
            TITLE,
            "kn2row's duplication factor is 1: little for Duplo, 9x less workspace",
            rows,
        )
    }
}

/// Adversarial memory-bound streaming kernel: pure load/compute/store with
/// every address touched once and no tensor-core traffic. The LHB has
/// nothing to probe, so Duplo's speedup is exactly 1.0.
pub mod membound {
    use super::*;

    /// Registry name.
    pub const NAME: &str = "wl_membound";
    /// Registry title.
    pub const TITLE: &str = "WL — memory-bound streaming kernel (adversarial)";

    /// Runs the workload.
    pub fn run(opts: &RunOptions) -> Vec<WlRow> {
        let gpu = opts.apply(GpuConfig::titan_v());
        let items = vec![("stream 64 CTAs x 8 warps x 128 lines".to_string(), 1)];
        let kernels: Vec<Box<dyn Kernel>> = vec![Box::new(StreamKernel::new(64, 8, 128))];
        run_rows(&items, &kernels, &gpu, opts)
    }

    /// Structured result.
    pub fn result(rows: &[WlRow], opts: &RunOptions) -> ExperimentResult {
        result_rows(NAME, TITLE, rows, opts)
    }

    /// Summary table.
    pub fn render(rows: &[WlRow]) -> String {
        render_rows(
            TITLE,
            "no tensor-core loads, no duplicates: Duplo must not (and does not) help",
            rows,
        )
    }
}

/// L2 slice camping: the same strided streaming kernel under a sliced L2,
/// once with a modulo partition hash (every line lands on slice 0 because
/// the stride is a multiple of the slice count) and once with the
/// XOR-folded hash that spreads the stride across slices. The camped run
/// funnels all traffic through one slice's port/DRAM queues and pays for
/// it in cycles.
pub mod slice_camp {
    use super::*;
    use duplo_mem::HashKind;

    /// Registry name.
    pub const NAME: &str = "wl_slice_camp";
    /// Registry title.
    pub const TITLE: &str = "WL — L2 slice camping: mod hash vs XOR-folded spread";
    /// L2 slices in both runs.
    pub const SLICES: usize = 4;
    /// Access stride in cache lines — a multiple of [`SLICES`], so the
    /// modulo hash maps the whole footprint to one slice.
    pub const STRIDE_LINES: u64 = 4;

    /// One hash configuration's run, with its per-slice access profile.
    #[derive(Clone, Debug)]
    pub struct CampRow {
        /// Row label (`mod (camped)` / `xor (spread)`).
        pub item: String,
        /// Partition hash label.
        pub hash: String,
        /// End-to-end cycles of the run.
        pub cycles: f64,
        /// Per-slice access counts, slice index order.
        pub slice_accesses: Vec<u64>,
        /// Hottest slice index.
        pub hot_slice: usize,
        /// Hottest slice's share of all slice accesses (1.0 = camped).
        pub hot_share: f64,
        /// Hottest slice's summed port + DRAM queue delay (cycles).
        pub hot_queue_delay: f64,
        /// Summed port + DRAM queue delay of every other slice.
        pub rest_queue_delay: f64,
    }

    fn row(item: &str, hash: HashKind, r: &GpuRunResult) -> CampRow {
        let accesses: Vec<u64> = r.stats.slices.iter().map(|s| s.accesses).collect();
        let total: u64 = accesses.iter().sum();
        let hot = accesses
            .iter()
            .enumerate()
            .max_by_key(|&(_, a)| a)
            .map_or(0, |(i, _)| i);
        let delay =
            |i: usize| r.stats.slices[i].port_queue_delay + r.stats.slices[i].dram_queue_delay;
        CampRow {
            item: item.to_string(),
            hash: hash.label().to_string(),
            cycles: r.cycles,
            hot_slice: hot,
            hot_share: if total == 0 {
                0.0
            } else {
                accesses[hot] as f64 / total as f64
            },
            hot_queue_delay: delay(hot),
            rest_queue_delay: (0..accesses.len()).filter(|&i| i != hot).map(delay).sum(),
            slice_accesses: accesses,
        }
    }

    /// Runs the workload: one strided stream per hash kind.
    pub fn run(opts: &RunOptions) -> Vec<CampRow> {
        let kernel = StreamKernel::strided(16, 4, 32, STRIDE_LINES);
        let hashes = [
            ("mod (camped)", HashKind::Mod),
            ("xor (spread)", HashKind::XorFold),
        ];
        let results: Vec<GpuRunResult> =
            crate::runner::par_map_opt(opts.threads, &hashes, |&(_, hash)| {
                let mut cfg = opts.apply(GpuConfig::titan_v());
                cfg.sm.lhb = None;
                cfg.sm.hierarchy = cfg.sm.hierarchy.sliced(SLICES, hash);
                GpuSim::with_options(cfg, opts.clone()).run(&kernel)
            });
        hashes
            .iter()
            .zip(&results)
            .map(|(&(item, hash), r)| row(item, hash, r))
            .collect()
    }

    /// Structured result.
    pub fn result(rows: &[CampRow], opts: &RunOptions) -> ExperimentResult {
        let json_rows: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::obj()
                    .field("item", r.item.as_str())
                    .field("hash", r.hash.as_str())
                    .field("cycles", r.cycles)
                    .field(
                        "slice_accesses",
                        Json::Arr(r.slice_accesses.iter().map(|&a| Json::from(a)).collect()),
                    )
                    .field("hot_slice", r.hot_slice)
                    .field("hot_share", r.hot_share)
                    .field("hot_queue_delay", r.hot_queue_delay)
                    .field("rest_queue_delay", r.rest_queue_delay)
                    .build()
            })
            .collect();
        let slowdown = match rows {
            [camp, spread, ..] if spread.cycles > 0.0 => Some(camp.cycles / spread.cycles),
            _ => None,
        };
        let mut summary = Json::obj()
            .field("slices", SLICES)
            .field("stride_lines", STRIDE_LINES);
        if let Some(s) = slowdown {
            summary = summary.field("camp_over_spread", s);
        }
        ExperimentResult::new(NAME, TITLE, opts_json(opts), json_rows, summary.build())
    }

    /// Summary table.
    pub fn render(rows: &[CampRow]) -> String {
        let mut t = Table::new(
            TITLE,
            &[
                "item",
                "hash",
                "cycles",
                "hot slice",
                "hot share",
                "hot qdelay",
                "rest qdelay",
            ],
        );
        for r in rows {
            t.push_row(vec![
                r.item.clone(),
                r.hash.clone(),
                format!("{:.0}", r.cycles),
                r.hot_slice.to_string(),
                fmt_pct_plain(r.hot_share),
                format!("{:.0}", r.hot_queue_delay),
                format!("{:.0}", r.rest_queue_delay),
            ]);
        }
        t.note(&format!(
            "stride {STRIDE_LINES} lines on {SLICES} slices: mod hash camps on one slice, xor spreads"
        ));
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunOptions {
        RunOptions {
            sample_ctas: Some(2),
            ..RunOptions::default()
        }
    }

    #[test]
    fn membound_speedup_is_exactly_one() {
        let rows = membound::run(&quick());
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(
            r.base_cycles, r.duplo_cycles,
            "memory-bound stream must be unaffected by Duplo"
        );
        assert_eq!(r.speedup(), 1.0);
        assert_eq!(r.lhb_hit_rate, 0.0, "LHB must never hit: nothing probes it");
        assert_eq!(r.elimination, 0.0);
    }

    #[test]
    fn attention_without_workspace_leaves_duplo_inert() {
        let rows = attention::run(&quick());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(
                r.base_cycles, r.duplo_cycles,
                "{}: plain GEMM has no workspace, LHB is power-gated",
                r.item
            );
            assert_eq!(r.lhb_hit_rate, 0.0);
        }
    }

    #[test]
    fn batched_convs_benefit_from_duplo() {
        let rows = batched::run(&quick());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.elimination > 0.0,
                "{}: a 3x3 lowered GEMM must have duplicate rows to lift",
                r.item
            );
            assert!(r.speedup() >= 1.0, "{}: Duplo must not slow down", r.item);
        }
    }

    #[test]
    fn grouping_starves_duplo_of_duplicates() {
        let rows = grouped::run(&quick());
        assert_eq!(rows.len(), 4);
        // Full-channel conv (G=1) has rows to lift; per-group K shrinks
        // with G until there is nothing left, and Duplo never hurts.
        assert!(
            rows[0].elimination > 0.0,
            "G=1 must expose duplicate workspace rows"
        );
        assert!(
            rows[0].elimination >= rows[3].elimination,
            "depthwise (G=64, K=9) must not out-eliminate full-channel conv"
        );
        for r in &rows {
            assert!(r.speedup() >= 1.0, "{}: Duplo must not slow down", r.item);
        }
    }

    #[test]
    fn slice_camping_costs_cycles_and_spreading_recovers_them() {
        let rows = slice_camp::run(&quick());
        assert_eq!(rows.len(), 2);
        let (camp, spread) = (&rows[0], &rows[1]);
        assert_eq!(
            camp.hot_share, 1.0,
            "mod hash with a stride-of-slices footprint must camp on one slice"
        );
        assert!(
            spread.slice_accesses.iter().filter(|&&a| a > 0).count() > 1,
            "xor hash must spread the same footprint across slices"
        );
        assert_eq!(
            camp.slice_accesses.iter().sum::<u64>(),
            spread.slice_accesses.iter().sum::<u64>(),
            "both hashes see the same access stream"
        );
        assert!(
            camp.cycles > spread.cycles,
            "camping ({}) must cost cycles over spreading ({})",
            camp.cycles,
            spread.cycles
        );
        assert!(
            camp.hot_queue_delay > spread.hot_queue_delay,
            "the camped slice's queues must dominate any spread slice's"
        );
    }

    #[test]
    fn kn2row_has_less_duplication_and_less_workspace() {
        let rows = kn2row::run(&quick());
        assert_eq!(rows.len(), 2);
        let (im2col, kn2row) = (&rows[0], &rows[1]);
        assert!(
            im2col.elimination > kn2row.elimination,
            "im2col ({:.3}) must expose more duplication than kn2row ({:.3})",
            im2col.elimination,
            kn2row.elimination
        );
    }
}
