//! Fig. 11: breakdown of data services along the memory hierarchy,
//! baseline (B) versus Duplo (D) with a 1024-entry LHB.

use super::{RunOptions, table1_layers};
use crate::report::{Table, fmt_pct_plain};
use crate::{GpuConfig, GpuRunResult, layer_run_opts};
use duplo_core::LhbConfig;

/// Service-share breakdown of one run.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Shares {
    /// Fraction of load row-segments served by the LHB.
    pub lhb: f64,
    /// ... by the L1.
    pub l1: f64,
    /// ... by the L2.
    pub l2: f64,
    /// ... by DRAM.
    pub dram: f64,
}

impl Shares {
    fn of(r: &GpuRunResult) -> Shares {
        let s = &r.stats.services;
        let total = s.total_global().max(1) as f64;
        Shares {
            lhb: s.lhb as f64 / total,
            l1: s.l1 as f64 / total,
            l2: s.l2 as f64 / total,
            dram: s.dram as f64 / total,
        }
    }
}

/// One layer's baseline-vs-Duplo breakdown, plus the DRAM traffic delta.
#[derive(Clone, Debug)]
pub struct Row {
    /// Layer name.
    pub layer: String,
    /// Baseline shares.
    pub baseline: Shares,
    /// Duplo shares.
    pub duplo: Shares,
    /// Relative change in DRAM bytes (negative = saved).
    pub dram_delta: f64,
    /// Full baseline metrics block ([`crate::results::run_metrics`]).
    pub baseline_metrics: crate::json::Json,
    /// Full Duplo metrics block.
    pub duplo_metrics: crate::json::Json,
}

/// Runs the Fig. 11 reproduction over all Table I layers (one parallel
/// job per layer; each job runs its baseline and Duplo pair).
pub fn run(opts: &RunOptions) -> Vec<Row> {
    let gpu = opts.apply(GpuConfig::titan_v());
    crate::runner::par_map_opt(opts.threads, &table1_layers(), |l| {
        let p = l.lowered();
        let base = layer_run_opts(&p, None, &gpu, opts);
        let duplo = layer_run_opts(&p, Some(LhbConfig::paper_default()), &gpu, opts);
        let dram_delta =
            duplo.stats.mem.dram_bytes as f64 / base.stats.mem.dram_bytes.max(1) as f64 - 1.0;
        Row {
            layer: l.qualified_name(),
            baseline: Shares::of(&base),
            duplo: Shares::of(&duplo),
            dram_delta,
            baseline_metrics: crate::results::run_metrics(&base),
            duplo_metrics: crate::results::run_metrics(&duplo),
        }
    })
}

/// Structured result: service shares, DRAM delta, and the full metrics
/// blocks of both runs.
pub fn result(rows: &[Row], opts: &RunOptions) -> crate::results::ExperimentResult {
    use crate::json::Json;
    use crate::results::{ExperimentResult, opts_json};
    let shares_json = |s: &Shares| {
        Json::obj()
            .field("lhb", s.lhb)
            .field("l1", s.l1)
            .field("l2", s.l2)
            .field("dram", s.dram)
            .build()
    };
    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .field("layer", r.layer.as_str())
                .field("baseline_shares", shares_json(&r.baseline))
                .field("duplo_shares", shares_json(&r.duplo))
                .field("dram_delta", r.dram_delta)
                .field("baseline", r.baseline_metrics.clone())
                .field("duplo", r.duplo_metrics.clone())
                .build()
        })
        .collect();
    let mean_dram = rows.iter().map(|r| r.dram_delta).sum::<f64>() / rows.len().max(1) as f64;
    ExperimentResult::new(
        "fig11_mem_breakdown",
        "Fig. 11 — memory service breakdown, baseline vs Duplo",
        opts_json(opts),
        json_rows,
        Json::obj().field("mean_dram_delta", mean_dram).build(),
    )
}

/// Renders the breakdown table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(
        "Fig. 11 — memory service breakdown, baseline (B) vs Duplo (D)",
        &[
            "layer",
            "B:L1",
            "B:L2",
            "B:DRAM",
            "D:LHB",
            "D:L1",
            "D:L2",
            "D:DRAM",
            "DRAM bytes",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.layer.clone(),
            fmt_pct_plain(r.baseline.l1),
            fmt_pct_plain(r.baseline.l2),
            fmt_pct_plain(r.baseline.dram),
            fmt_pct_plain(r.duplo.lhb),
            fmt_pct_plain(r.duplo.l1),
            fmt_pct_plain(r.duplo.l2),
            fmt_pct_plain(r.duplo.dram),
            format!("{:+.1}%", r.dram_delta * 100.0),
        ]);
    }
    let n = rows.len() as f64;
    let avg_dram: f64 = rows.iter().map(|r| r.dram_delta).sum::<f64>() / n;
    t.note(format!(
        "average DRAM traffic change: {:+.1}% (paper: -26.6%)",
        avg_dram * 100.0
    ));
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::RunOptions;
    use crate::layer_run;
    use crate::networks;

    #[test]
    fn duplo_shifts_service_share_into_lhb() {
        // ResNet C2 has channel count 64 => short duplicate-reuse distance,
        // so even a 3-CTA sample shows the service-share shift clearly.
        let opts = RunOptions {
            sample_ctas: Some(3),
            ..RunOptions::default()
        };
        let gpu = opts.apply(GpuConfig::titan_v());
        let p = networks::resnet()[1].lowered();
        let base = layer_run(&p, None, &gpu);
        let duplo = layer_run(&p, Some(LhbConfig::paper_default()), &gpu);
        let bs = Shares::of(&base);
        let ds = Shares::of(&duplo);
        assert_eq!(bs.lhb, 0.0);
        assert!(ds.lhb > 0.1, "expected >10% LHB share, got {:.3}", ds.lhb);
        assert!(
            duplo.stats.mem.dram_bytes <= base.stats.mem.dram_bytes,
            "Duplo must not increase DRAM traffic"
        );
        // Shares sum to 1.
        for s in [bs, ds] {
            assert!((s.lhb + s.l1 + s.l2 + s.dram - 1.0).abs() < 1e-9);
        }
    }
}
