//! Fig. 2: speedup of convolution methods over direct convolution.

use crate::costmodel::MachineModel;
use crate::networks::{self, LayerSpec};
use crate::report::{Table, fmt_x, gmean};
use duplo_conv::memuse::ConvMethod;

/// One figure row: a layer and its per-method speedups over direct.
#[derive(Clone, Debug)]
pub struct Row {
    /// Layer name, e.g. "ResNet/C1".
    pub layer: String,
    /// Speedup per method in [`ConvMethod::FIG_METHODS`] order; `None` =
    /// inapplicable (missing bar).
    pub speedups: Vec<Option<f64>>,
}

/// Full result: per-layer rows plus per-network geometric means.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// Per-layer rows in Table I order.
    pub rows: Vec<Row>,
    /// Per-method geometric mean over all applicable layers.
    pub gmeans: Vec<Option<f64>>,
}

fn layer_row(model: &MachineModel, layer: &LayerSpec) -> Row {
    Row {
        layer: layer.qualified_name(),
        speedups: ConvMethod::FIG_METHODS
            .iter()
            .map(|m| model.layer_speedup(*m, layer))
            .collect(),
    }
}

/// Runs the Fig. 2 reproduction over all Table I layers.
pub fn run() -> Fig2 {
    let model = MachineModel::default();
    let rows: Vec<Row> = networks::all_layers()
        .iter()
        .map(|l| layer_row(&model, l))
        .collect();
    let gmeans = (0..ConvMethod::FIG_METHODS.len())
        .map(|i| {
            let v: Vec<f64> = rows.iter().filter_map(|r| r.speedups[i]).collect();
            gmean(&v)
        })
        .collect();
    Fig2 { rows, gmeans }
}

/// Structured result for the JSON layer.
pub fn result(fig: &Fig2) -> crate::results::ExperimentResult {
    use crate::json::Json;
    let methods: Vec<&str> = ConvMethod::FIG_METHODS.iter().map(|m| m.label()).collect();
    let row_json = |r: &Row| {
        let mut b = Json::obj().field("layer", r.layer.as_str());
        for (m, s) in methods.iter().zip(&r.speedups) {
            b = b.field(m, *s);
        }
        b.build()
    };
    let mut summary = Json::obj();
    for (m, g) in methods.iter().zip(&fig.gmeans) {
        summary = summary.field(&format!("gmean_{m}"), *g);
    }
    crate::results::ExperimentResult::new(
        "fig02_speedup",
        "Fig. 2 — speedup over direct convolution",
        Json::obj().field("model", "roofline").build(),
        fig.rows.iter().map(row_json).collect(),
        summary.build(),
    )
}

/// Renders the result as a text table.
pub fn render(fig: &Fig2) -> String {
    let mut header = vec!["layer"];
    for m in ConvMethod::FIG_METHODS {
        header.push(m.label());
    }
    let mut t = Table::new("Fig. 2 — speedup over direct convolution", &header);
    for r in &fig.rows {
        let mut cells = vec![r.layer.clone()];
        cells.extend(r.speedups.iter().map(|s| fmt_x(*s)));
        t.push_row(cells);
    }
    let mut cells = vec!["gmean".to_string()];
    cells.extend(fig.gmeans.iter().map(|s| fmt_x(*s)));
    t.push_row(cells);
    t.note("roofline cost model calibrated to the paper's RTX 2080 Ti averages (see DESIGN.md)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_22_layers() {
        let fig = run();
        assert_eq!(fig.rows.len(), 22);
        assert!(render(&fig).contains("GAN/TC1"));
    }

    #[test]
    fn missing_bars_match_paper() {
        // "the entire GAN and C1 layer of ResNet" lack Winograd/FFT bars;
        // in our applicability rules ResNet's strided layers drop out too.
        let fig = run();
        let wino_idx = 1; // FIG_METHODS: [Gemm, Winograd, Fft, GemmTc, WinogradTc]
        for r in &fig.rows {
            if r.layer.starts_with("GAN/") {
                assert!(r.speedups[wino_idx].is_none(), "{}", r.layer);
                assert!(r.speedups[2].is_none(), "{}", r.layer);
            }
            if r.layer.starts_with("YOLO/") {
                assert!(r.speedups[wino_idx].is_some(), "{}", r.layer);
            }
        }
    }
}
