//! Table II: the Duplo workflow walkthrough on the Fig. 1/6 example.

use crate::report::Table;
use duplo_core::{DetectionUnit, LhbConfig, LoadDecision, LoadToken, PhysReg};
use duplo_isa::WorkspaceDesc;

/// One workflow step (a row of the paper's Table II).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Instruction number (1-based).
    pub inst: usize,
    /// Disassembly-style text.
    pub text: &'static str,
    /// Workspace array index (`None` for non-workspace loads).
    pub array_idx: Option<u64>,
    /// Element ID.
    pub element_id: Option<u64>,
    /// "Hit" / "Miss" / "N/A".
    pub lhb_status: &'static str,
    /// Renaming performed, e.g. "%r4 -> %p2".
    pub renaming: String,
    /// LHB operation, e.g. "Entry allocation".
    pub operation: &'static str,
}

/// Runs the Table II walkthrough on a real [`DetectionUnit`] and returns
/// the observed steps.
///
/// The paper's example uses the 4x4/3x3 convolution of Fig. 6 with a
/// 4-entry view of the LHB so that element 6 conflicts with element 2.
pub fn run() -> Vec<Step> {
    let desc = WorkspaceDesc {
        base: 0x1000,
        bytes: 36 * 2,
        elem_bytes: 2,
        row_stride_elems: 9,
        input_w: 4,
        channels: 1,
        fw: 3,
        fh: 3,
        out_w: 2,
        out_h: 2,
        stride: 1,
        pad: 0,
        batch: 1,
    };
    // A 4-entry LHB reproduces the paper's conflict between elements 2 and 6.
    let mut du = DetectionUnit::new(&desc, LhbConfig::direct_mapped(4), 0);
    let addr = |idx: u64| 0x1000 + idx * 2;
    let mut steps = Vec::new();

    // Inst 1: wmma.load.a %r4, [%r23] -> array_idx 2.
    let t1 = LoadToken(1);
    let d1 = du.probe_load(addr(2), 2, t1);
    assert_eq!(d1, LoadDecision::Miss);
    du.record_fill(addr(2), 2, PhysReg(2), t1);
    steps.push(Step {
        inst: 1,
        text: "wmma.load.a %r4, [%r23], %r27",
        array_idx: Some(2),
        element_id: Some(2),
        lhb_status: "Miss",
        renaming: "%r4 -> %p2".into(),
        operation: "Entry allocation",
    });

    // Inst 2: wmma.load.b %r2, [%r21] -> filter matrix, outside workspace.
    let d2 = du.probe_load(0x8000_0000, 2, LoadToken(2));
    assert_eq!(d2, LoadDecision::Bypass);
    steps.push(Step {
        inst: 2,
        text: "wmma.load.b %r2, [%r21], %r30",
        array_idx: None,
        element_id: None,
        lhb_status: "N/A",
        renaming: "%r2 -> %p1".into(),
        operation: "N/A",
    });

    // Inst 3: wmma.load.a %r3, [%r14] -> array_idx 10, same element 2: hit.
    let t3 = LoadToken(3);
    let d3 = du.probe_load(addr(10), 2, t3);
    assert_eq!(d3, LoadDecision::Hit { preg: PhysReg(2) });
    steps.push(Step {
        inst: 3,
        text: "wmma.load.a %r3, [%r14], %r27",
        array_idx: Some(10),
        element_id: Some(2),
        lhb_status: "Hit",
        renaming: "%r3 -> %p2".into(),
        operation: "Register reuse",
    });

    // Inst 4: array_idx 28 -> element 6; maps to the same 4-entry set as
    // element 2: conflict miss, entry replacement.
    let t4 = LoadToken(4);
    let d4 = du.probe_load(addr(28), 2, t4);
    assert_eq!(d4, LoadDecision::Miss);
    du.record_fill(addr(28), 2, PhysReg(6), t4);
    steps.push(Step {
        inst: 4,
        text: "wmma.load.a %r8, [%r16], %r27",
        array_idx: Some(28),
        element_id: Some(6),
        lhb_status: "Miss",
        renaming: "%r8 -> %p6".into(),
        operation: if du.lhb_stats().conflict_evictions > 0 {
            "Entry replacement"
        } else {
            "Entry allocation"
        },
    });
    steps
}

/// Structured result: the observed workflow steps.
pub fn result(steps: &[Step]) -> crate::results::ExperimentResult {
    use crate::json::Json;
    let rows: Vec<Json> = steps
        .iter()
        .map(|s| {
            Json::obj()
                .field("inst", s.inst)
                .field("text", s.text)
                .field("array_idx", s.array_idx)
                .field("element_id", s.element_id)
                .field("lhb_status", s.lhb_status)
                .field("renaming", s.renaming.as_str())
                .field("operation", s.operation)
                .build()
        })
        .collect();
    let summary = Json::obj().field("steps", steps.len()).build();
    crate::results::ExperimentResult::new(
        "table02_workflow",
        "Table II — Duplo workflow using the LHB",
        Json::Obj(vec![]),
        rows,
        summary,
    )
}

/// Renders the workflow as the paper's Table II.
pub fn render(steps: &[Step]) -> String {
    let mut t = Table::new(
        "Table II — Duplo workflow using the LHB",
        &[
            "#",
            "instruction",
            "array_idx",
            "element_ID",
            "LHB",
            "renaming",
            "LHB operation",
        ],
    );
    for s in steps {
        t.push_row(vec![
            s.inst.to_string(),
            s.text.to_string(),
            s.array_idx.map_or("-".into(), |v| v.to_string()),
            s.element_id.map_or("-".into(), |v| v.to_string()),
            s.lhb_status.to_string(),
            s.renaming.clone(),
            s.operation.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walkthrough_matches_paper_table2() {
        let steps = run();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].lhb_status, "Miss");
        assert_eq!(steps[1].lhb_status, "N/A");
        assert_eq!(steps[2].lhb_status, "Hit");
        assert_eq!(steps[2].element_id, Some(2));
        assert_eq!(steps[3].element_id, Some(6));
        assert_eq!(steps[3].operation, "Entry replacement");
        assert!(render(&steps).contains("Register reuse"));
    }
}
