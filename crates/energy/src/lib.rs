//! Event-based energy and area model (paper §V-H).
//!
//! The paper assesses Duplo with McPAT (paper ref. 21) and reports, for on-chip
//! components (register file, caches, detection unit) plus DRAM traffic, a
//! 34.1% energy reduction and a 0.77% area overhead relative to the
//! register file. We substitute a transparent event-energy model: every
//! structure access costs a fixed energy drawn from CACTI-class estimates
//! for a 14 nm-class process (documented on [`EnergyModel`]), and run
//! statistics supply the event counts. Absolute joules are not the point —
//! the *relative* baseline-vs-Duplo comparison is, and that depends only on
//! the event-count deltas and the energy ordering
//! `DRAM >> L2 > L1 >> RF > LHB`, which is robust across technologies.
//!
//! The area model counts SRAM bits of the LHB against the bits of the SM
//! register file. This transparent estimate lands at ~2.4% for the paper's
//! 1024-entry LHB entry layout, larger than the paper's McPAT-derived
//! 0.77%; the deviation is recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-event energies in nanojoules.
///
/// Defaults (per 32-byte sector unless noted):
///
/// * LHB probe: 1024x51-bit direct-mapped SRAM, ~2 pJ,
/// * register-file row access (32 B across banks): ~10 pJ,
/// * L1 sector access: ~30 pJ (128 KB SRAM),
/// * L2 sector access: ~120 pJ (MB-class SRAM slice + NoC hop),
/// * DRAM: ~40 pJ/bit interface + core ≈ 1.3 nJ per 32 B.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EnergyModel {
    /// One LHB probe or allocation.
    pub lhb_probe_nj: f64,
    /// One 32-byte register-file row read or write.
    pub rf_row_nj: f64,
    /// One L1 sector access.
    pub l1_sector_nj: f64,
    /// One L2 sector access.
    pub l2_sector_nj: f64,
    /// One DRAM 32-byte transfer.
    pub dram_sector_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            lhb_probe_nj: 0.002,
            rf_row_nj: 0.010,
            l1_sector_nj: 0.030,
            l2_sector_nj: 0.120,
            dram_sector_nj: 1.300,
        }
    }
}

/// Event counts extracted from a simulation run (the bridge from
/// `duplo-sm` statistics; kept dependency-free so the model is reusable).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct EnergyCounts {
    /// LHB probes (hits + misses) and allocations.
    pub lhb_events: u64,
    /// Register-file row accesses (load fills + MMA operand reads/writes).
    pub rf_rows: u64,
    /// L1 sector accesses (hits + misses + cancelled parallel probes).
    pub l1_accesses: u64,
    /// L2 sector accesses.
    pub l2_accesses: u64,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
}

/// An itemized energy total.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct EnergyReport {
    /// LHB energy (nJ).
    pub lhb_nj: f64,
    /// Register-file energy (nJ).
    pub rf_nj: f64,
    /// L1 energy (nJ).
    pub l1_nj: f64,
    /// L2 energy (nJ).
    pub l2_nj: f64,
    /// DRAM energy (nJ).
    pub dram_nj: f64,
}

impl EnergyReport {
    /// Computes the itemized report for `counts` under `model`.
    pub fn from_counts(model: &EnergyModel, counts: &EnergyCounts) -> EnergyReport {
        EnergyReport {
            lhb_nj: counts.lhb_events as f64 * model.lhb_probe_nj,
            rf_nj: counts.rf_rows as f64 * model.rf_row_nj,
            l1_nj: counts.l1_accesses as f64 * model.l1_sector_nj,
            l2_nj: counts.l2_accesses as f64 * model.l2_sector_nj,
            dram_nj: counts.dram_bytes as f64 / 32.0 * model.dram_sector_nj,
        }
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.lhb_nj + self.rf_nj + self.l1_nj + self.l2_nj + self.dram_nj
    }

    /// Relative saving of `duplo` over `baseline` (positive = Duplo
    /// cheaper), the §V-H headline number.
    pub fn saving_over(duplo: &EnergyReport, baseline: &EnergyReport) -> f64 {
        let b = baseline.total_nj();
        if b == 0.0 {
            0.0
        } else {
            1.0 - duplo.total_nj() / b
        }
    }
}

/// Area model: LHB SRAM bits versus register-file bits.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct AreaModel {
    /// Register-file bytes per SM (Table III: 256 KB).
    pub regfile_bytes: u64,
    /// LHB storage bits (from `LhbConfig::storage_bits`).
    pub lhb_bits: u64,
    /// ID-generator datapath estimate in equivalent SRAM bits (shifters,
    /// masks, two small-divisor units; a few hundred bit-equivalents).
    pub idgen_bit_equiv: u64,
}

impl AreaModel {
    /// Builds the model for the paper's SM (256 KB RF) and a given LHB.
    pub fn for_lhb_bits(lhb_bits: u64) -> AreaModel {
        AreaModel {
            regfile_bytes: 256 * 1024,
            lhb_bits,
            idgen_bit_equiv: 512,
        }
    }

    /// Detection-unit area as a fraction of the register file.
    pub fn overhead_fraction(&self) -> f64 {
        (self.lhb_bits + self.idgen_bit_equiv) as f64 / (self.regfile_bytes * 8) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(dram_bytes: u64, l1: u64) -> EnergyCounts {
        EnergyCounts {
            lhb_events: 1000,
            rf_rows: 10_000,
            l1_accesses: l1,
            l2_accesses: 2_000,
            dram_bytes,
        }
    }

    #[test]
    fn dram_dominates_total() {
        let m = EnergyModel::default();
        let r = EnergyReport::from_counts(&m, &counts(1 << 20, 10_000));
        assert!(r.dram_nj > r.l2_nj + r.l1_nj + r.rf_nj + r.lhb_nj);
    }

    #[test]
    fn saving_reflects_traffic_reduction() {
        let m = EnergyModel::default();
        let baseline = EnergyReport::from_counts(&m, &counts(1 << 20, 40_000));
        // Duplo: 30% less DRAM, 25% fewer L1 accesses, extra LHB events.
        let duplo = EnergyReport::from_counts(
            &m,
            &EnergyCounts {
                lhb_events: 40_000,
                rf_rows: 10_000,
                l1_accesses: 30_000,
                l2_accesses: 1_400,
                dram_bytes: (1 << 20) * 7 / 10,
            },
        );
        let saving = EnergyReport::saving_over(&duplo, &baseline);
        assert!(saving > 0.2 && saving < 0.4, "saving {saving}");
    }

    #[test]
    fn lhb_energy_is_marginal() {
        let m = EnergyModel::default();
        // A million LHB probes cost about as much as 1.5 thousand DRAM
        // sectors: the detection unit is energetically almost free.
        let probes = 1_000_000.0 * m.lhb_probe_nj;
        let sectors = probes / m.dram_sector_nj;
        assert!(sectors < 2_000.0);
    }

    #[test]
    fn area_overhead_for_paper_lhb() {
        // 1024 entries x 51 bits -> ~2.5% of a 256 KB register file.
        let a = AreaModel::for_lhb_bits(1024 * 51);
        let f = a.overhead_fraction();
        assert!(f > 0.02 && f < 0.03, "fraction {f}");
        // A 256-entry LHB drops under 1%, the paper's ballpark.
        let small = AreaModel::for_lhb_bits(256 * 51);
        assert!(small.overhead_fraction() < 0.01);
    }

    #[test]
    fn empty_counts_zero_energy() {
        let r = EnergyReport::from_counts(&EnergyModel::default(), &EnergyCounts::default());
        assert_eq!(r.total_nj(), 0.0);
        assert_eq!(EnergyReport::saving_over(&r, &r), 0.0);
    }
}
