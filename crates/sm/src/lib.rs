//! Cycle-level streaming-multiprocessor (SM) model with tensor cores and
//! the Duplo detection unit wired into the load-store path (paper Fig. 7).
//!
//! The SM executes trace kernels ([`duplo_isa::Kernel`]) with:
//!
//! * four warp schedulers (greedy-then-oldest, Table III) issuing one
//!   instruction per cycle each,
//! * a per-warp scoreboard on architectural fragment registers,
//! * a physical register file with warp-register renaming (row-slot
//!   granularity; Duplo hits bind a destination row to the physical row that
//!   already holds the duplicate),
//! * per-scheduler tensor-core pipelines and load-store units,
//! * an L1/L2/DRAM hierarchy slice (`duplo-mem`) behind the LDST units,
//! * optionally, a [`duplo_core::DetectionUnit`] probed by every
//!   tensor-core-load row-segment, in parallel with the L1 (§IV-B: "Duplo
//!   accesses the LHB and L1 cache in parallel").
//!
//! Entry point: [`run_kernel`] executes a set of CTAs on one simulated SM
//! and returns [`SmStats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod ldst;
pub mod regfile;
mod sm;
mod stats;
pub mod trace;
pub mod warp;

pub use config::{SchedulerPolicy, SmConfig};
pub use duplo_mem::SliceStat;
pub use sm::{
    LoopProfile, Sm, force_tick_reference, loop_profile, run_kernel, run_kernel_mode,
    run_kernel_reference, run_kernel_traced, run_kernel_traced_mode, run_kernel_traced_reference,
    simulated_cycles,
};
pub use stats::{ServiceCounts, SmStats, StallBreakdown};
pub use trace::{CtaSpan, SmSample, SmTraceData, TraceSpec};

// `run_kernel` calls are fanned out across threads by the whole-GPU
// simulator: its inputs must be sendable and its result collectable from a
// worker. Compile-time proof, so a stray `Rc`/`RefCell` in a config or
// stats field fails here rather than at the distant call site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SmConfig>();
    assert_send_sync::<SmStats>();
    assert_send_sync::<SchedulerPolicy>();
};
