//! The SM execution engine: schedulers, tensor cores, LDST pipes, and the
//! Duplo detection unit, advanced cycle by cycle.

use crate::config::{SchedulerPolicy, SmConfig};
use crate::ldst::{Inflight, LdstUnit, MemKind};
use crate::regfile::PhysRegFile;
use crate::stats::{SmStats, StallBreakdown};
use crate::trace::{SmSample, SmTraceData, SmTracer, TraceSpec};
use crate::warp::WarpCtx;
use duplo_core::{DetectionUnit, LoadDecision, LoadToken, PhysReg};
use duplo_isa::{Kernel, Op, Space};
use duplo_mem::MemoryHierarchy;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

#[derive(Clone, Debug)]
struct CtaState {
    live_warps: usize,
    at_barrier: usize,
    shared_bytes: u32,
}

/// The simulated SM.
pub struct Sm {
    config: SmConfig,
    cycle: u64,
    warps: Vec<Option<WarpCtx>>,
    ctas: Vec<Option<CtaState>>,
    shared_in_use: u32,
    ldst: Vec<LdstUnit>,
    tc_busy: Vec<Vec<u64>>,
    last_warp: Vec<Option<usize>>,
    regfile: PhysRegFile,
    hierarchy: MemoryHierarchy,
    detect: Option<DetectionUnit>,
    retire_queue: BinaryHeap<Reverse<(u64, u64)>>,
    next_token: u64,
    next_age: u64,
    /// preg -> fill address, for the rename validation log.
    fill_addr: HashMap<u32, u64>,
    stats: SmStats,
    /// Cycle-resolved trace recorder; `None` (the default) costs one
    /// branch per tick and nothing else.
    tracer: Option<Box<SmTracer>>,
}

/// What happened when the LDST pipe processed one row.
enum RowOutcome {
    Stall,
    Done {
        ready: u64,
        preg: Option<PhysReg>,
        token: Option<LoadToken>,
    },
}

impl Sm {
    /// Creates an SM for a kernel (programs the detection unit when the
    /// kernel carries a workspace descriptor and the config enables Duplo).
    pub fn new(config: SmConfig, kernel: &dyn Kernel) -> Sm {
        let detect = match (&config.lhb, kernel.workspace()) {
            (Some(lhb), Some(desc)) => {
                let mut du = DetectionUnit::new(&desc, *lhb, 0);
                du.latency = config.detect_latency;
                Some(du)
            }
            _ => None,
        };
        let hierarchy = MemoryHierarchy::new(config.hierarchy);
        Sm {
            ldst: (0..config.schedulers)
                .map(|_| LdstUnit::new(config.ldst_queue))
                .collect(),
            tc_busy: (0..config.schedulers)
                .map(|_| vec![0u64; config.tensor_cores_per_scheduler()])
                .collect(),
            last_warp: vec![None; config.schedulers],
            warps: (0..config.max_warps).map(|_| None).collect(),
            ctas: (0..config.max_ctas).map(|_| None).collect(),
            shared_in_use: 0,
            regfile: PhysRegFile::new(config.regfile_rows()),
            hierarchy,
            detect,
            retire_queue: BinaryHeap::new(),
            next_token: 1,
            next_age: 0,
            fill_addr: HashMap::new(),
            stats: SmStats::default(),
            tracer: None,
            cycle: 0,
            config,
        }
    }

    /// Attaches a cycle-resolved trace recorder; samples are taken every
    /// `spec.interval` cycles from the next tick on.
    pub fn attach_tracer(&mut self, spec: TraceSpec) {
        self.tracer = Some(Box::new(SmTracer::new(spec)));
    }

    /// Attempts to launch CTA `idx` of `kernel`; returns `false` when SM
    /// resources (CTA slots, warp slots, shared memory) are exhausted.
    pub fn try_launch(&mut self, kernel: &dyn Kernel, idx: usize) -> bool {
        let shared = kernel.shared_mem_per_cta();
        if self.shared_in_use + shared > self.config.shared_mem_bytes {
            return false;
        }
        let Some(cta_slot) = self.ctas.iter().position(|c| c.is_none()) else {
            return false;
        };
        let trace = kernel.cta(idx);
        let free_slots = self.warps.iter().filter(|w| w.is_none()).count();
        if free_slots < trace.warps.len() {
            return false;
        }
        self.ctas[cta_slot] = Some(CtaState {
            live_warps: trace.warps.len(),
            at_barrier: 0,
            shared_bytes: shared,
        });
        self.shared_in_use += shared;
        let launch_cycle = self.cycle;
        if let Some(t) = self.tracer.as_mut() {
            t.cta_begin(cta_slot, idx, launch_cycle);
        }
        for wt in trace.warps {
            let slot = self
                .warps
                .iter()
                .position(|w| w.is_none())
                .expect("checked free slots");
            self.warps[slot] = Some(WarpCtx::new(wt.ops, cta_slot, self.next_age));
            self.next_age += 1;
        }
        true
    }

    /// Whether all work (warps + LDST pipes) has drained.
    pub fn idle(&self) -> bool {
        self.warps.iter().all(|w| w.is_none()) && self.ldst.iter().all(|u| u.is_empty())
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the SM by one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        // 1. Retire loads whose commit window has passed.
        while let Some(&Reverse((when, token))) = self.retire_queue.peek() {
            if when > self.cycle {
                break;
            }
            self.retire_queue.pop();
            if let Some(du) = self.detect.as_mut() {
                if let Some(p) = du.retire(LoadToken(token)) {
                    self.regfile.release(p);
                }
            }
        }
        // 2. LDST pipes process one row each.
        for s in 0..self.config.schedulers {
            self.tick_ldst(s);
        }
        // 3. Schedulers issue.
        for s in 0..self.config.schedulers {
            self.tick_scheduler(s);
        }
        // 4. Barrier resolution.
        self.resolve_barriers();
        // 5. Trace sampling (one branch when tracing is off).
        if self.tracer.is_some() {
            let interval = self.tracer.as_ref().expect("checked").spec.interval;
            if self.cycle % interval == 0 {
                let sample = self.sample_now();
                self.tracer.as_mut().expect("checked").push_sample(sample);
            }
        }
    }

    /// Snapshots the SM's cumulative counters and live memory gauges.
    fn sample_now(&mut self) -> SmSample {
        let mem = self.hierarchy.stats();
        let (lhb_hits, lhb_misses) = match &self.detect {
            Some(du) => {
                let l = du.lhb_stats();
                (l.hits, l.misses)
            }
            None => (0, 0),
        };
        SmSample {
            cycle: self.cycle,
            issued_mma: self.stats.issued_mma,
            issued_tensor_loads: self.stats.issued_tensor_loads,
            issued_other: self.stats.issued_other,
            stall_empty: self.stats.stalls.empty,
            stall_data_dependency: self.stats.stalls.data_dependency,
            stall_ldst_full: self.stats.stalls.ldst_full,
            stall_tensor_busy: self.stats.stalls.tensor_busy,
            stall_barrier: self.stats.stalls.barrier,
            ldst_pipe_stalls: self.stats.ldst_pipe_stalls,
            lhb_hits,
            lhb_misses,
            serv_lhb: self.stats.services.lhb,
            serv_l1: self.stats.services.l1,
            serv_l2: self.stats.services.l2,
            serv_dram: self.stats.services.dram,
            serv_shared: self.stats.services.shared,
            l1_hits: mem.l1_hits,
            l1_misses: mem.l1_misses,
            l2_accesses: mem.l2_accesses,
            dram_accesses: mem.dram_accesses,
            mshr_occupancy: self.hierarchy.mshr_occupancy(self.cycle) as u64,
            mshr_peak: mem.mshr_peak_occupancy,
            l2_backlog: self.hierarchy.l2_port_backlog(self.cycle),
            dram_backlog: self.hierarchy.dram_backlog(self.cycle),
        }
    }

    fn resolve_barriers(&mut self) {
        for cta_slot in 0..self.ctas.len() {
            let release = match &self.ctas[cta_slot] {
                Some(c) => c.at_barrier > 0 && c.at_barrier == c.live_warps,
                None => false,
            };
            if release {
                for w in self.warps.iter_mut().flatten() {
                    if w.cta_slot == cta_slot {
                        w.at_barrier = false;
                    }
                }
                self.ctas[cta_slot].as_mut().expect("checked").at_barrier = 0;
            }
        }
    }

    /// Scheduler `s` tries to issue one instruction (GTO or LRR order).
    fn tick_scheduler(&mut self, s: usize) {
        let mut candidates: Vec<usize> = (0..self.warps.len())
            .filter(|w| w % self.config.schedulers == s)
            .filter(|&w| {
                self.warps[w]
                    .as_ref()
                    .is_some_and(|wc| !wc.done && !wc.at_barrier)
            })
            .collect();
        if candidates.is_empty() {
            // Attribute the idle slot: a scheduler whose live warps are all
            // parked at a barrier is stalled on synchronization, not empty.
            let any_at_barrier = (0..self.warps.len())
                .filter(|w| w % self.config.schedulers == s)
                .any(|w| {
                    self.warps[w]
                        .as_ref()
                        .is_some_and(|wc| !wc.done && wc.at_barrier)
                });
            if any_at_barrier {
                self.stats.stalls.barrier += 1;
            } else {
                self.stats.stalls.empty += 1;
            }
            return;
        }
        match self.config.policy {
            SchedulerPolicy::Gto => {
                candidates.sort_by_key(|&w| self.warps[w].as_ref().map_or(u64::MAX, |wc| wc.age));
                if let Some(last) = self.last_warp[s] {
                    if let Some(pos) = candidates.iter().position(|&w| w == last) {
                        let w = candidates.remove(pos);
                        candidates.insert(0, w);
                    }
                }
            }
            SchedulerPolicy::Lrr => {
                // Rotate so the warp after the last-issued goes first.
                if let Some(last) = self.last_warp[s] {
                    let pivot = candidates.iter().position(|&w| w > last).unwrap_or(0);
                    candidates.rotate_left(pivot);
                }
            }
        }

        let mut blocked = StallBreakdown::default();
        for &w in &candidates {
            match self.try_issue(w, s) {
                IssueResult::Issued => {
                    self.last_warp[s] = Some(w);
                    return;
                }
                IssueResult::DepBlocked => blocked.data_dependency += 1,
                IssueResult::LdstFull => blocked.ldst_full += 1,
                IssueResult::TensorBusy => blocked.tensor_busy += 1,
            }
        }
        // Nothing issued: classify the cycle by the most actionable cause.
        if blocked.ldst_full > 0 {
            self.stats.stalls.ldst_full += 1;
        } else if blocked.tensor_busy > 0 {
            self.stats.stalls.tensor_busy += 1;
        } else if blocked.data_dependency > 0 {
            self.stats.stalls.data_dependency += 1;
        } else {
            self.stats.stalls.barrier += 1;
        }
    }

    fn try_issue(&mut self, w: usize, s: usize) -> IssueResult {
        let cycle = self.cycle;
        let op = {
            let wc = self.warps[w].as_ref().expect("candidate exists");
            let Some(op) = wc.next_op() else {
                return IssueResult::DepBlocked;
            };
            let op = *op;
            if !wc.deps_ready(&op, cycle) {
                return IssueResult::DepBlocked;
            }
            op
        };
        match op {
            Op::Alu { dst, latency } => {
                let wc = self.warps[w].as_mut().expect("exists");
                if let Some(d) = dst {
                    wc.mark_pending(d, cycle + u64::from(latency));
                }
                wc.pc += 1;
                self.stats.issued_other += 1;
                IssueResult::Issued
            }
            Op::WmmaMma { d, .. } => {
                let ii = u64::from(self.config.mma_ii);
                let Some(tc) = self.tc_busy[s].iter_mut().find(|b| **b <= cycle) else {
                    return IssueResult::TensorBusy;
                };
                *tc = cycle + ii;
                let wc = self.warps[w].as_mut().expect("exists");
                // Accumulator forwarding: chained MMAs sustain the
                // initiation interval; consumers see the result after ii.
                wc.mark_pending(d, cycle + ii);
                wc.pc += 1;
                self.stats.issued_mma += 1;
                IssueResult::Issued
            }
            Op::Bar => {
                let wc = self.warps[w].as_mut().expect("exists");
                wc.at_barrier = true;
                let cta = wc.cta_slot;
                wc.pc += 1;
                self.ctas[cta].as_mut().expect("live cta").at_barrier += 1;
                self.stats.issued_other += 1;
                IssueResult::Issued
            }
            Op::Exit => {
                // Drain: wait for all pending writes before exiting so that
                // binding release cannot race in-flight loads.
                {
                    let wc = self.warps[w].as_ref().expect("exists");
                    if wc.pending.values().any(|&r| r > cycle) {
                        return IssueResult::DepBlocked;
                    }
                }
                self.finish_warp(w);
                self.stats.issued_other += 1;
                IssueResult::Issued
            }
            Op::WmmaLoad {
                dst,
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            } => self.issue_mem(
                w,
                s,
                MemKind::TensorLoad,
                Some(dst),
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            ),
            Op::WmmaStore {
                src: _,
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            } => self.issue_mem(
                w,
                s,
                MemKind::TensorStore,
                None,
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            ),
            Op::Ld {
                dst,
                addr,
                bytes,
                space,
            } => {
                let rows = bytes.div_ceil(32).max(1) as u8;
                self.issue_mem(
                    w,
                    s,
                    MemKind::ScalarLoad,
                    Some(dst),
                    addr,
                    rows,
                    32,
                    32,
                    space,
                )
            }
            Op::St {
                src: _,
                addr,
                bytes,
                space,
            } => {
                let rows = bytes.div_ceil(32).max(1) as u8;
                self.issue_mem(w, s, MemKind::ScalarStore, None, addr, rows, 32, 32, space)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_mem(
        &mut self,
        w: usize,
        s: usize,
        kind: MemKind,
        dst: Option<duplo_isa::ArchReg>,
        addr: u64,
        rows: u8,
        seg_bytes: u16,
        row_stride: u64,
        space: Space,
    ) -> IssueResult {
        if !self.ldst[s].can_accept() {
            return IssueResult::LdstFull;
        }
        let wc = self.warps[w].as_mut().expect("exists");
        if let Some(d) = dst {
            wc.mark_pending(d, u64::MAX);
        }
        wc.pc += 1;
        self.ldst[s].push(Inflight {
            warp: w,
            kind,
            dst,
            addr,
            rows,
            seg_bytes,
            row_stride,
            space,
            next_row: 0,
            ready: 0,
            pregs: Vec::new(),
            tokens: Vec::new(),
        });
        match kind {
            MemKind::TensorLoad => self.stats.issued_tensor_loads += 1,
            _ => self.stats.issued_other += 1,
        }
        IssueResult::Issued
    }

    /// LDST pipe `s`: process one row of the head instruction.
    fn tick_ldst(&mut self, s: usize) {
        let (warp, kind, row_addr, seg, space) = {
            let Some(head) = self.ldst[s].head_mut() else {
                return;
            };
            (
                head.warp,
                head.kind,
                head.row_addr(head.next_row),
                u32::from(head.seg_bytes),
                head.space,
            )
        };
        let outcome = self.process_row(kind, row_addr, seg, space);
        match outcome {
            RowOutcome::Stall => {
                self.stats.ldst_pipe_stalls += 1;
            }
            RowOutcome::Done { ready, preg, token } => {
                let done = {
                    let head = self.ldst[s].head_mut().expect("head exists");
                    head.next_row += 1;
                    head.ready = head.ready.max(ready);
                    if let Some(p) = preg {
                        head.pregs.push(p);
                    }
                    if let Some(t) = token {
                        head.tokens.push(t);
                    }
                    head.complete()
                };
                if done {
                    let infl = self.ldst[s].pop().expect("head exists");
                    self.finish_mem(infl);
                }
                let _ = warp;
            }
        }
    }

    /// Handles one row-sector of a memory instruction.
    fn process_row(&mut self, kind: MemKind, addr: u64, seg: u32, space: Space) -> RowOutcome {
        let cycle = self.cycle;
        match (kind, space) {
            (MemKind::TensorLoad, Space::Shared)
                if self.config.lhb_on_shared && self.detect.is_some() =>
            {
                self.process_tensor_row_shared(addr, seg)
            }
            (_, Space::Shared) => {
                self.stats.services.shared += 1;
                RowOutcome::Done {
                    ready: cycle + u64::from(self.config.shared_latency),
                    preg: None,
                    token: None,
                }
            }
            (MemKind::TensorStore | MemKind::ScalarStore, Space::Global) => {
                self.hierarchy.store(cycle, addr, seg);
                if let Some(du) = self.detect.as_mut() {
                    let released = du.store(addr, u64::from(seg));
                    for p in released {
                        self.regfile.release(p);
                    }
                }
                RowOutcome::Done {
                    ready: cycle,
                    preg: None,
                    token: None,
                }
            }
            (MemKind::ScalarLoad, Space::Global) => {
                if !self.hierarchy.can_accept(cycle) {
                    return RowOutcome::Stall;
                }
                let (ready, lvl) = self
                    .hierarchy
                    .load(cycle, addr, seg)
                    .expect("can_accept checked");
                self.stats.services.count(lvl);
                RowOutcome::Done {
                    ready,
                    preg: None,
                    token: None,
                }
            }
            (MemKind::TensorLoad, Space::Global) => self.process_tensor_row(addr, seg),
        }
    }

    /// A shared-memory tensor-core load row under the implicit-GEMM
    /// extension: a detection hit replaces the shared-memory access with
    /// register renaming (2-cycle detection latency instead of the
    /// shared-memory pipeline latency); misses fall through to shared
    /// memory and allocate an entry.
    fn process_tensor_row_shared(&mut self, addr: u64, seg: u32) -> RowOutcome {
        let cycle = self.cycle;
        let Some(preg) = self.regfile.alloc() else {
            self.force_retire(64);
            match self.regfile.alloc() {
                Some(_) => {}
                None => return RowOutcome::Stall,
            }
            return RowOutcome::Stall;
        };
        self.stats.row_loads += 1;
        let token = LoadToken(self.next_token);
        self.next_token += 1;
        let du = self.detect.as_mut().expect("checked by caller");
        match du.probe_load(addr, u64::from(seg), token) {
            LoadDecision::Hit { preg: dup } => {
                let latency = u64::from(du.latency);
                self.regfile.release(preg);
                self.regfile.addref(dup);
                self.stats.services.lhb += 1;
                self.stats.eliminated_loads += 1;
                RowOutcome::Done {
                    ready: cycle + latency,
                    preg: Some(dup),
                    token: Some(token),
                }
            }
            LoadDecision::Miss => {
                self.regfile.addref(preg);
                if let Some(displaced) = du.record_fill(addr, u64::from(seg), preg, token) {
                    self.regfile.release(displaced);
                }
                self.stats.services.shared += 1;
                RowOutcome::Done {
                    ready: cycle + u64::from(self.config.shared_latency),
                    preg: Some(preg),
                    token: Some(token),
                }
            }
            LoadDecision::Bypass => {
                self.stats.services.shared += 1;
                RowOutcome::Done {
                    ready: cycle + u64::from(self.config.shared_latency),
                    preg: Some(preg),
                    token: None,
                }
            }
        }
    }

    /// One tensor-core load row: the Duplo-eligible path.
    fn process_tensor_row(&mut self, addr: u64, seg: u32) -> RowOutcome {
        let cycle = self.cycle;
        if !self.hierarchy.can_accept(cycle) {
            return RowOutcome::Stall;
        }
        // Physical destination row (released again on an LHB hit). Under
        // register-file pressure, force-retire the oldest pending loads to
        // reclaim the rows their LHB entries pin.
        let preg = match self.regfile.alloc() {
            Some(p) => p,
            None => {
                self.force_retire(64);
                match self.regfile.alloc() {
                    Some(p) => p,
                    None => return RowOutcome::Stall,
                }
            }
        };
        self.stats.row_loads += 1;
        let token = LoadToken(self.next_token);
        self.next_token += 1;

        if let Some(du) = self.detect.as_mut() {
            match du.probe_load(addr, u64::from(seg), token) {
                LoadDecision::Hit { preg: dup } => {
                    // Cancelled L1 request still consumed an L1 probe
                    // (paper §V-H), but no state change or traffic.
                    self.regfile.release(preg);
                    self.regfile.addref(dup);
                    self.stats.services.lhb += 1;
                    self.stats.eliminated_loads += 1;
                    if self.stats.rename_pairs.len() < self.config.rename_log_cap {
                        if let Some(&src) = self.fill_addr.get(&dup.0) {
                            self.stats.rename_pairs.push((src, addr));
                        }
                    }
                    return RowOutcome::Done {
                        ready: cycle + u64::from(du.latency),
                        preg: Some(dup),
                        token: Some(token),
                    };
                }
                LoadDecision::Miss => {
                    let (ready, lvl) = self
                        .hierarchy
                        .load(cycle, addr, seg)
                        .expect("can_accept checked");
                    self.stats.services.count(lvl);
                    let mut ready = ready;
                    if self.config.octet_dup {
                        if let Some((r2, _)) = self.hierarchy.load(cycle, addr, seg) {
                            self.stats.octet_dup_l1 += 1;
                            ready = ready.max(r2);
                        }
                    }
                    // The LHB entry takes its own reference to the filled
                    // register, keeping the value alive across architectural
                    // rebinding until the entry is released (paper §IV-B).
                    self.regfile.addref(preg);
                    let du = self.detect.as_mut().expect("still present");
                    if let Some(displaced) = du.record_fill(addr, u64::from(seg), preg, token) {
                        self.regfile.release(displaced);
                    }
                    if self.config.rename_log_cap > 0 {
                        self.fill_addr.insert(preg.0, addr);
                    }
                    return RowOutcome::Done {
                        ready,
                        preg: Some(preg),
                        token: Some(token),
                    };
                }
                LoadDecision::Bypass => {}
            }
        }
        // Baseline path (no detection unit, or bypassed).
        let (ready, lvl) = self
            .hierarchy
            .load(cycle, addr, seg)
            .expect("can_accept checked");
        self.stats.services.count(lvl);
        let mut ready = ready;
        if self.config.octet_dup {
            if let Some((r2, _)) = self.hierarchy.load(cycle, addr, seg) {
                self.stats.octet_dup_l1 += 1;
                ready = ready.max(r2);
            }
        }
        RowOutcome::Done {
            ready,
            preg: Some(preg),
            token: None,
        }
    }

    /// Early-retires up to `n` of the oldest scheduled load commitments,
    /// releasing the physical rows their LHB entries pin (register-file
    /// pressure relief).
    fn force_retire(&mut self, n: usize) {
        for _ in 0..n {
            let Some(Reverse((_, token))) = self.retire_queue.pop() else {
                return;
            };
            if let Some(du) = self.detect.as_mut() {
                if let Some(p) = du.retire(LoadToken(token)) {
                    self.regfile.release(p);
                }
            }
        }
    }

    /// A memory macro-instruction finished all its rows.
    fn finish_mem(&mut self, infl: Inflight) {
        let ready = infl.ready;
        let commit = ready.saturating_add(u64::from(self.config.commit_delay));
        // Schedule commit-time retirement: the LHB entries created (or
        // relayed to) this load's tokens are released then, dropping the
        // LHB's references to the physical rows. Architectural rebinding
        // below does NOT release entries — the physical value stays alive
        // for renaming until retirement (paper §IV-B).
        for t in &infl.tokens {
            self.retire_queue.push(Reverse((commit, t.0)));
        }
        let warp_done = self.warps[infl.warp].as_ref().is_none_or(|wc| wc.done);
        if warp_done {
            // The warp exited (only possible if it had no pending regs, so
            // this cannot be a load of a live register) — drop this load's
            // own references; LHB references drain via the retire queue.
            for p in infl.pregs {
                self.regfile.release(p);
            }
            return;
        }
        if let Some(dst) = infl.dst {
            let wc = self.warps[infl.warp].as_mut().expect("live warp");
            wc.resolve_pending(dst, ready);
            let old = wc.bindings.insert(dst, infl.pregs);
            if let Some(old_pregs) = old {
                for p in old_pregs {
                    self.regfile.release(p);
                }
            }
        } else {
            for p in infl.pregs {
                self.regfile.release(p);
            }
        }
    }

    /// Issues warp exit: release every binding, update CTA accounting.
    fn finish_warp(&mut self, w: usize) {
        let wc = self.warps[w].take().expect("warp exists");
        for (_, pregs) in wc.bindings {
            for p in pregs {
                self.regfile.release(p);
            }
        }
        let cta = self.ctas[wc.cta_slot].as_mut().expect("live cta");
        cta.live_warps -= 1;
        if cta.live_warps == 0 {
            self.shared_in_use -= cta.shared_bytes;
            self.ctas[wc.cta_slot] = None;
            self.stats.ctas_run += 1;
            let cycle = self.cycle;
            if let Some(t) = self.tracer.as_mut() {
                t.cta_end(wc.cta_slot, cycle);
            }
        }
    }

    /// Finalizes and returns statistics plus the recorded trace (when a
    /// tracer was attached). A final end-of-run sample is appended so the
    /// timeline always closes on counters equal to the returned stats.
    pub fn into_stats_and_trace(mut self) -> (SmStats, Option<SmTraceData>) {
        if self.tracer.is_some() {
            let sample = self.sample_now();
            self.tracer
                .as_mut()
                .expect("checked")
                .push_final_sample(sample);
        }
        let trace = self.tracer.take().map(|t| t.data);
        (self.into_stats(), trace)
    }

    /// Finalizes and returns statistics.
    pub fn into_stats(mut self) -> SmStats {
        self.stats.cycles = self.cycle;
        self.stats.rf_peak_rows = self.regfile.peak();
        if let Some(du) = &self.detect {
            self.stats.detect = du.stats();
            self.stats.lhb = du.lhb_stats();
        }
        self.stats.mem = self.hierarchy.stats();
        self.stats
    }

    /// Live statistics view (cycle count not yet finalized).
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }
}

enum IssueResult {
    Issued,
    DepBlocked,
    LdstFull,
    TensorBusy,
}

/// Drives `sm` until all of `cta_ids` have launched and drained.
fn drive(sm: &mut Sm, kernel: &dyn Kernel, cta_ids: &[usize]) {
    let mut backlog: VecDeque<usize> = cta_ids.iter().copied().collect();
    const LIMIT: u64 = 2_000_000_000;
    loop {
        while let Some(&next) = backlog.front() {
            if sm.try_launch(kernel, next) {
                backlog.pop_front();
            } else {
                break;
            }
        }
        if backlog.is_empty() && sm.idle() {
            break;
        }
        sm.tick();
        assert!(
            sm.cycle() < LIMIT,
            "simulation exceeded {LIMIT} cycles — deadlock?"
        );
    }
}

/// Runs `cta_ids` of `kernel` to completion on one SM and returns the
/// statistics.
///
/// # Panics
///
/// Panics if the simulation exceeds two billion cycles (deadlock guard).
pub fn run_kernel(kernel: &dyn Kernel, cta_ids: &[usize], config: SmConfig) -> SmStats {
    let mut sm = Sm::new(config, kernel);
    drive(&mut sm, kernel, cta_ids);
    sm.into_stats()
}

/// Like [`run_kernel`], but records a cycle-resolved trace per `spec`.
///
/// # Panics
///
/// Panics if the simulation exceeds two billion cycles (deadlock guard).
pub fn run_kernel_traced(
    kernel: &dyn Kernel,
    cta_ids: &[usize],
    config: SmConfig,
    spec: TraceSpec,
) -> (SmStats, SmTraceData) {
    let mut sm = Sm::new(config, kernel);
    sm.attach_tracer(spec);
    drive(&mut sm, kernel, cta_ids);
    let (stats, trace) = sm.into_stats_and_trace();
    (stats, trace.expect("tracer attached above"))
}
