//! The SM execution engine: schedulers, tensor cores, LDST pipes, and the
//! Duplo detection unit, advanced cycle by cycle.
//!
//! # The event-driven tick loop
//!
//! [`Sm::tick`] normally advances one cycle at a time, but when a tick
//! makes no progress (nothing issued, no LDST row processed, no retire, no
//! barrier released) the SM consults a wakeup wheel ([`Sm::next_wake`]):
//! if every scheduler and every LDST pipe is *provably* blocked until some
//! future cycle, the loop attributes the intervening cycles to the exact
//! stall buckets the tick-by-tick loop would have charged
//! ([`Sm::attribute_skipped`]) and jumps `cycle` there in one step. The
//! invariants that make the jump sound:
//!
//! * **Completeness of the event set.** The wake cycle is the minimum over
//!   every threshold that could change any unit's state or its stall
//!   classification: finite scoreboard ready-cycles of each candidate's
//!   next op, tensor-core free cycles on schedulers with an MMA candidate,
//!   the retire-queue head, the earliest outstanding MSHR fill (for
//!   MSHR-blocked pipes), and the next trace-sample boundary.
//! * **No side-effecting retries are skipped.** An LDST head that could
//!   progress — or whose retry has side effects (register-file pressure
//!   force-retires) — forces the tick-by-tick path; only MSHR-full
//!   rejections, whose retry is idempotent, may be fast-forwarded.
//! * **Exact attribution.** Each scheduler's classification is constant
//!   across the skipped interval (every classification-changing threshold
//!   is itself a wake event), so `issued + stalls == cycles × schedulers`
//!   holds bit-exactly and [`SmStats`] is byte-identical to the reference
//!   loop — the `event_skip` equivalence suite pins this.
//!
//! Set `DUPLO_TICK_REFERENCE=1` (or call [`force_tick_reference`]) to run
//! the tick-by-tick reference loop instead.

use crate::config::{SchedulerPolicy, SmConfig};
use crate::ldst::{Inflight, LdstUnit, MemKind};
use crate::regfile::PhysRegFile;
use crate::stats::{SmStats, StallBreakdown};
use crate::trace::{SmSample, SmTraceData, SmTracer, TraceSpec};
use crate::warp::WarpCtx;
use duplo_core::{DetectionUnit, LoadDecision, LoadToken, PhysReg};
use duplo_isa::{ArchReg, Kernel, Op, Space};
use duplo_mem::MemoryHierarchy;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::OnceLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Simulated cycles accumulated by every `run_kernel*` call in this
/// process (all SMs, all runs). The bench trajectory divides deltas of
/// this counter by wall-clock time to report cycles-simulated/sec.
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Event-wheel fast-forwards taken across every `run_kernel*` call
/// (loop-profile counter; never part of [`SmStats`], so the event and
/// reference loops still produce byte-identical statistics).
static SIM_SKIPS: AtomicU64 = AtomicU64::new(0);

/// Cycles covered by those fast-forwards (the reference loop would have
/// walked them tick by tick).
static SIM_SKIPPED_CYCLES: AtomicU64 = AtomicU64::new(0);

/// `run_kernel*` invocations (== `drive` calls) so far.
static SIM_RUNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide override forcing the tick-by-tick reference loop (see
/// [`force_tick_reference`]).
static TICK_REFERENCE: AtomicBool = AtomicBool::new(false);

/// Total simulated SM cycles across every `run_kernel*` call so far.
pub fn simulated_cycles() -> u64 {
    SIM_CYCLES.load(Ordering::Relaxed)
}

/// Process-wide SM-loop profile: how the event-driven loop earned its
/// keep. Sampled coarsely — the counters are accumulated once per
/// `run_kernel*` call, never per tick — so reading them costs nothing on
/// the hot path. All totals are deterministic at any thread count (sums
/// over per-SM values in deterministic order).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopProfile {
    /// Simulated cycles (same counter as [`simulated_cycles`]).
    pub cycles: u64,
    /// Event-wheel fast-forwards taken.
    pub skips_taken: u64,
    /// Cycles covered by those fast-forwards.
    pub cycles_skipped: u64,
    /// Cycles actually walked tick by tick (`cycles - cycles_skipped`).
    pub ticks_walked: u64,
    /// `run_kernel*` invocations.
    pub runs: u64,
}

/// Current process-wide SM-loop profile.
pub fn loop_profile() -> LoopProfile {
    let cycles = SIM_CYCLES.load(Ordering::Relaxed);
    let cycles_skipped = SIM_SKIPPED_CYCLES.load(Ordering::Relaxed);
    LoopProfile {
        cycles,
        skips_taken: SIM_SKIPS.load(Ordering::Relaxed),
        cycles_skipped,
        ticks_walked: cycles.saturating_sub(cycles_skipped),
        runs: SIM_RUNS.load(Ordering::Relaxed),
    }
}

/// Forces (or releases) the tick-by-tick reference loop process-wide.
/// Results are identical either way — the reference loop exists so the
/// equivalence gates and the bench trajectory's reference column have
/// something to diff against. The `DUPLO_TICK_REFERENCE` environment
/// variable (any value but `0`) has the same effect.
pub fn force_tick_reference(on: bool) {
    TICK_REFERENCE.store(on, Ordering::SeqCst);
}

/// Whether new SMs should use the tick-by-tick reference loop.
fn reference_mode() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var_os("DUPLO_TICK_REFERENCE").is_some_and(|v| v != "0"))
        || TICK_REFERENCE.load(Ordering::SeqCst)
}

#[derive(Clone, Debug)]
struct CtaState {
    live_warps: usize,
    at_barrier: usize,
    shared_bytes: u32,
}

/// The simulated SM.
pub struct Sm {
    config: SmConfig,
    cycle: u64,
    warps: Vec<Option<WarpCtx>>,
    ctas: Vec<Option<CtaState>>,
    shared_in_use: u32,
    ldst: Vec<LdstUnit>,
    tc_busy: Vec<Vec<u64>>,
    last_warp: Vec<Option<usize>>,
    regfile: PhysRegFile,
    hierarchy: MemoryHierarchy,
    detect: Option<DetectionUnit>,
    retire_queue: BinaryHeap<Reverse<(u64, u64)>>,
    next_token: u64,
    next_age: u64,
    /// preg -> fill address, for the rename validation log.
    fill_addr: HashMap<u32, u64>,
    stats: SmStats,
    /// Cycle-resolved trace recorder; `None` (the default) costs one
    /// branch per tick and nothing else.
    tracer: Option<Box<SmTracer>>,
    /// Event-driven fast-forward enabled (the default); the tick-by-tick
    /// reference loop runs when false.
    event_skip: bool,
    /// Whether the current tick retired, issued, processed a row, or
    /// released a barrier — cleared at tick start, gates the wakeup wheel.
    progress: bool,
    /// Event-wheel fast-forwards this SM took (loop profile; kept out of
    /// [`SmStats`] so event and reference runs stay stat-identical).
    skips_taken: u64,
    /// Cycles those fast-forwards covered.
    cycles_skipped: u64,
    /// Reusable candidate buffer (hoisted out of `tick_scheduler`).
    cand_scratch: Vec<usize>,
    /// Recycled `Inflight::pregs` vectors.
    preg_pool: Vec<Vec<PhysReg>>,
    /// Recycled `Inflight::tokens` vectors.
    token_pool: Vec<Vec<LoadToken>>,
    /// Per-scheduler runnable-warp mask: bit `b` of entry `s` covers warp
    /// slot `b * schedulers + s` — set while the warp is resident and not
    /// parked at a barrier.
    run_mask: Vec<u64>,
    /// Per-scheduler barrier mask: resident warps parked at a barrier.
    barrier_mask: Vec<u64>,
}

/// What happened when the LDST pipe processed one row.
enum RowOutcome {
    Stall,
    Done {
        ready: u64,
        preg: Option<PhysReg>,
        token: Option<LoadToken>,
    },
}

/// Applies the scheduler's stall-classification priority: the cycle is
/// charged to the most actionable cause among the blocked candidates.
/// Shared by the per-tick path (`n == 1`) and the fast-forward attribution
/// so the two can never drift apart.
fn classify_stall(stalls: &mut StallBreakdown, blocked: &StallBreakdown, n: u64) {
    if blocked.ldst_full > 0 {
        stalls.ldst_full += n;
    } else if blocked.tensor_busy > 0 {
        stalls.tensor_busy += n;
    } else if blocked.data_dependency > 0 {
        stalls.data_dependency += n;
    } else {
        stalls.barrier += n;
    }
}

/// Folds one scoreboard entry into a wake computation: clears `ready` when
/// the register is still pending after `cycle` and records finite ready
/// cycles as wake events (`u64::MAX` means "unknown until a load lands",
/// which some other event must resolve first).
fn dep_event(
    pending: &HashMap<ArchReg, u64>,
    reg: ArchReg,
    cycle: u64,
    wake: &mut u64,
    ready: &mut bool,
) {
    if let Some(&r) = pending.get(&reg) {
        if r > cycle {
            *ready = false;
            if r != u64::MAX {
                *wake = (*wake).min(r);
            }
        }
    }
}

impl Sm {
    /// Creates an SM for a kernel (programs the detection unit when the
    /// kernel carries a workspace descriptor and the config enables Duplo).
    pub fn new(config: SmConfig, kernel: &dyn Kernel) -> Sm {
        assert!(
            config.max_warps <= 64 * config.schedulers,
            "max_warps ({}) must fit the bit-packed per-scheduler warp \
             masks (64 x {} schedulers)",
            config.max_warps,
            config.schedulers
        );
        let detect = match (&config.lhb, kernel.workspace()) {
            (Some(lhb), Some(desc)) => {
                let mut du = DetectionUnit::new(&desc, *lhb, 0);
                du.latency = config.detect_latency;
                Some(du)
            }
            _ => None,
        };
        let hierarchy = MemoryHierarchy::new(config.hierarchy);
        Sm {
            ldst: (0..config.schedulers)
                .map(|_| LdstUnit::new(config.ldst_queue))
                .collect(),
            tc_busy: (0..config.schedulers)
                .map(|_| vec![0u64; config.tensor_cores_per_scheduler()])
                .collect(),
            last_warp: vec![None; config.schedulers],
            warps: (0..config.max_warps).map(|_| None).collect(),
            ctas: (0..config.max_ctas).map(|_| None).collect(),
            shared_in_use: 0,
            regfile: PhysRegFile::new(config.regfile_rows()),
            hierarchy,
            detect,
            retire_queue: BinaryHeap::new(),
            next_token: 1,
            next_age: 0,
            fill_addr: HashMap::new(),
            stats: SmStats::default(),
            tracer: None,
            cycle: 0,
            event_skip: !reference_mode(),
            progress: false,
            skips_taken: 0,
            cycles_skipped: 0,
            cand_scratch: Vec::with_capacity(config.max_warps),
            preg_pool: Vec::new(),
            token_pool: Vec::new(),
            run_mask: vec![0; config.schedulers],
            barrier_mask: vec![0; config.schedulers],
            config,
        }
    }

    /// Selects the event-driven fast-forward loop (`true`, the default) or
    /// the tick-by-tick reference loop (`false`). Statistics are identical
    /// either way; only wall-clock time differs.
    pub fn set_event_skip(&mut self, on: bool) {
        self.event_skip = on;
    }

    /// Attaches a cycle-resolved trace recorder; samples are taken every
    /// `spec.interval` cycles from the next tick on.
    pub fn attach_tracer(&mut self, spec: TraceSpec) {
        self.tracer = Some(Box::new(SmTracer::new(spec)));
    }

    /// Attempts to launch CTA `idx` of `kernel`; returns `false` when SM
    /// resources (CTA slots, warp slots, shared memory) are exhausted.
    pub fn try_launch(&mut self, kernel: &dyn Kernel, idx: usize) -> bool {
        let shared = kernel.shared_mem_per_cta();
        if self.shared_in_use + shared > self.config.shared_mem_bytes {
            return false;
        }
        let Some(cta_slot) = self.ctas.iter().position(|c| c.is_none()) else {
            return false;
        };
        let trace = kernel.cta(idx);
        let free_slots = self.warps.iter().filter(|w| w.is_none()).count();
        if free_slots < trace.warps.len() {
            return false;
        }
        self.ctas[cta_slot] = Some(CtaState {
            live_warps: trace.warps.len(),
            at_barrier: 0,
            shared_bytes: shared,
        });
        self.shared_in_use += shared;
        let launch_cycle = self.cycle;
        if let Some(t) = self.tracer.as_mut() {
            t.cta_begin(cta_slot, idx, launch_cycle);
        }
        for wt in trace.warps {
            let slot = self
                .warps
                .iter()
                .position(|w| w.is_none())
                .expect("checked free slots");
            self.warps[slot] = Some(WarpCtx::new(wt.ops, cta_slot, self.next_age));
            self.run_mask[slot % self.config.schedulers] |= 1 << (slot / self.config.schedulers);
            self.next_age += 1;
        }
        true
    }

    /// Whether all work (warps + LDST pipes) has drained.
    pub fn idle(&self) -> bool {
        self.warps.iter().all(|w| w.is_none()) && self.ldst.iter().all(|u| u.is_empty())
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the SM by at least one cycle; when nothing progressed and
    /// every unit is provably blocked, fast-forwards to the next event
    /// (see the module docs for the invariants).
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.progress = false;
        // 1. Retire loads whose commit window has passed.
        while let Some(&Reverse((when, token))) = self.retire_queue.peek() {
            if when > self.cycle {
                break;
            }
            self.retire_queue.pop();
            self.progress = true;
            if let Some(du) = self.detect.as_mut() {
                if let Some(p) = du.retire(LoadToken(token)) {
                    self.regfile.release(p);
                }
            }
        }
        // 2. LDST pipes process one row each.
        for s in 0..self.config.schedulers {
            self.tick_ldst(s);
        }
        // 3. Schedulers issue.
        for s in 0..self.config.schedulers {
            self.tick_scheduler(s);
        }
        // 4. Barrier resolution.
        self.resolve_barriers();
        // 5. Trace sampling (detached while the sample borrows the SM).
        if let Some(mut t) = self.tracer.take() {
            if self.cycle % t.spec.interval == 0 {
                t.push_sample(self.sample_now());
            }
            self.tracer = Some(t);
        }
        // 6. Event-driven fast-forward: on a no-progress tick, jump to the
        // cycle before the next event, charging the interval to the same
        // stall buckets the tick-by-tick loop would have.
        if self.event_skip && !self.progress {
            if let Some(wake) = self.next_wake() {
                let skipped = wake - self.cycle - 1;
                if skipped > 0 {
                    self.attribute_skipped(skipped);
                    self.cycle += skipped;
                    self.skips_taken += 1;
                    self.cycles_skipped += skipped;
                }
            }
        }
    }

    /// The earliest cycle after the current one at which any unit's state
    /// or stall classification can change, or `None` when some unit could
    /// make progress next cycle (or has a retry with side effects, or no
    /// finite event exists) — callers must then tick cycle by cycle.
    fn next_wake(&mut self) -> Option<u64> {
        let c = self.cycle;
        let mut wake = u64::MAX;
        // LDST pipes. Only a global-load head rejected by a full MSHR file
        // is provably stuck — and its retry is idempotent; it wakes when
        // the earliest outstanding fill lands. Every other head (shared
        // rows, stores, register-file-pressure retries whose force-retire
        // pops have side effects) must be retried every cycle.
        for s in 0..self.config.schedulers {
            let Some(head) = self.ldst[s].head() else {
                continue;
            };
            let mshr_gated = head.space == Space::Global
                && matches!(head.kind, MemKind::TensorLoad | MemKind::ScalarLoad);
            if !mshr_gated || self.hierarchy.can_accept(c) {
                return None;
            }
            wake = wake.min(self.hierarchy.next_mshr_fill(c)?);
        }
        // Retire-queue head: retirement releases registers and LHB
        // entries, which can change what the pipes do when they resume.
        if let Some(&Reverse((when, _))) = self.retire_queue.peek() {
            wake = wake.min(when);
        }
        // Scheduler candidates: every blocked candidate contributes the
        // thresholds that could unblock or reclassify it; an issuable
        // candidate forbids the jump entirely.
        for s in 0..self.config.schedulers {
            let mut any_mma = false;
            let mut m = self.run_mask[s];
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                let w = b * self.config.schedulers + s;
                let wc = self.warps[w].as_ref().expect("masked warp resident");
                let Some(&op) = wc.next_op() else {
                    continue;
                };
                let mut ready = true;
                for src in op.srcs().into_iter().flatten() {
                    dep_event(&wc.pending, src, c, &mut wake, &mut ready);
                }
                if let Some(dst) = op.dst() {
                    dep_event(&wc.pending, dst, c, &mut wake, &mut ready);
                }
                if matches!(op, Op::Exit) {
                    // Exit drains the whole scoreboard, not just its own
                    // operands.
                    for &r in wc.pending.values() {
                        if r > c {
                            ready = false;
                            if r != u64::MAX {
                                wake = wake.min(r);
                            }
                        }
                    }
                }
                match op {
                    Op::WmmaMma { .. } => {
                        any_mma = true;
                        if ready && self.tc_busy[s].iter().any(|&busy| busy <= c) {
                            return None;
                        }
                    }
                    Op::WmmaLoad { .. } | Op::WmmaStore { .. } | Op::Ld { .. } | Op::St { .. } => {
                        if ready && self.ldst[s].can_accept() {
                            return None;
                        }
                        // Ready but queue-full: the queue drains only via
                        // its head, whose wake (MSHR fill) or tick-by-tick
                        // verdict was computed above.
                    }
                    _ => {
                        if ready {
                            return None;
                        }
                    }
                }
            }
            if any_mma {
                for &busy in &self.tc_busy[s] {
                    if busy > c {
                        wake = wake.min(busy);
                    }
                }
            }
        }
        // Trace samples read live gauges, so a sample boundary is an event.
        if let Some(t) = &self.tracer {
            wake = wake.min((c / t.spec.interval + 1) * t.spec.interval);
        }
        if wake == u64::MAX || wake <= c + 1 {
            None
        } else {
            Some(wake)
        }
    }

    /// Charges `skipped` fully-blocked cycles to the stall buckets each
    /// scheduler (and each stalled LDST pipe) accrues per blocked cycle.
    /// Only valid right after [`Sm::next_wake`] returned a wake cycle: the
    /// classification is then constant across the interval.
    fn attribute_skipped(&mut self, skipped: u64) {
        let c = self.cycle;
        let scheds = self.config.schedulers;
        for s in 0..scheds {
            if self.run_mask[s] == 0 {
                if self.barrier_mask[s] != 0 {
                    self.stats.stalls.barrier += skipped;
                } else {
                    self.stats.stalls.empty += skipped;
                }
                continue;
            }
            let mut blocked = StallBreakdown::default();
            let mut m = self.run_mask[s];
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                let w = b * scheds + s;
                let wc = self.warps[w].as_ref().expect("masked warp resident");
                let Some(op) = wc.next_op() else {
                    blocked.data_dependency += 1;
                    continue;
                };
                let dep_blocked = !wc.deps_ready(op, c)
                    || (matches!(op, Op::Exit) && wc.pending.values().any(|&r| r > c));
                if dep_blocked {
                    blocked.data_dependency += 1;
                } else {
                    match op {
                        Op::WmmaMma { .. } => blocked.tensor_busy += 1,
                        Op::WmmaLoad { .. }
                        | Op::WmmaStore { .. }
                        | Op::Ld { .. }
                        | Op::St { .. } => blocked.ldst_full += 1,
                        _ => unreachable!("issuable candidate survived next_wake"),
                    }
                }
            }
            classify_stall(&mut self.stats.stalls, &blocked, skipped);
        }
        // Every non-empty pipe is head-stalled across the interval
        // (guaranteed by next_wake), accruing one pipe stall per cycle.
        for s in 0..scheds {
            if !self.ldst[s].is_empty() {
                self.stats.ldst_pipe_stalls += skipped;
            }
        }
    }

    /// Snapshots the SM's cumulative counters and live memory gauges.
    fn sample_now(&mut self) -> SmSample {
        let mem = self.hierarchy.stats();
        let (slice_backlog_max, slice_backlog_sum, hot_slice) =
            self.hierarchy.slice_backlogs(self.cycle);
        let (lhb_hits, lhb_misses) = match &self.detect {
            Some(du) => {
                let l = du.lhb_stats();
                (l.hits, l.misses)
            }
            None => (0, 0),
        };
        SmSample {
            cycle: self.cycle,
            issued_mma: self.stats.issued_mma,
            issued_tensor_loads: self.stats.issued_tensor_loads,
            issued_other: self.stats.issued_other,
            stall_empty: self.stats.stalls.empty,
            stall_data_dependency: self.stats.stalls.data_dependency,
            stall_ldst_full: self.stats.stalls.ldst_full,
            stall_tensor_busy: self.stats.stalls.tensor_busy,
            stall_barrier: self.stats.stalls.barrier,
            ldst_pipe_stalls: self.stats.ldst_pipe_stalls,
            lhb_hits,
            lhb_misses,
            serv_lhb: self.stats.services.lhb,
            serv_l1: self.stats.services.l1,
            serv_l2: self.stats.services.l2,
            serv_dram: self.stats.services.dram,
            serv_shared: self.stats.services.shared,
            l1_hits: mem.l1_hits,
            l1_misses: mem.l1_misses,
            l2_accesses: mem.l2_accesses,
            dram_accesses: mem.dram_accesses,
            mshr_occupancy: self.hierarchy.mshr_occupancy(self.cycle) as u64,
            mshr_peak: mem.mshr_peak_occupancy,
            l2_backlog: self.hierarchy.l2_port_backlog(self.cycle),
            dram_backlog: self.hierarchy.dram_backlog(self.cycle),
            slice_backlog_max,
            slice_backlog_sum,
            hot_slice: hot_slice as u64,
        }
    }

    fn resolve_barriers(&mut self) {
        let scheds = self.config.schedulers;
        for cta_slot in 0..self.ctas.len() {
            let release = match &self.ctas[cta_slot] {
                Some(c) => c.at_barrier > 0 && c.at_barrier == c.live_warps,
                None => false,
            };
            if release {
                for w in 0..self.warps.len() {
                    let Some(wc) = self.warps[w].as_mut() else {
                        continue;
                    };
                    if wc.cta_slot == cta_slot && wc.at_barrier {
                        wc.at_barrier = false;
                        let bit = 1u64 << (w / scheds);
                        self.barrier_mask[w % scheds] &= !bit;
                        self.run_mask[w % scheds] |= bit;
                    }
                }
                self.ctas[cta_slot].as_mut().expect("checked").at_barrier = 0;
                self.progress = true;
            }
        }
    }

    /// Scheduler `s` tries to issue one instruction (GTO or LRR order).
    fn tick_scheduler(&mut self, s: usize) {
        let scheds = self.config.schedulers;
        let mut candidates = std::mem::take(&mut self.cand_scratch);
        candidates.clear();
        let mut m = self.run_mask[s];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            candidates.push(b * scheds + s);
        }
        if candidates.is_empty() {
            // Attribute the idle slot: a scheduler whose live warps are all
            // parked at a barrier is stalled on synchronization, not empty.
            if self.barrier_mask[s] != 0 {
                self.stats.stalls.barrier += 1;
            } else {
                self.stats.stalls.empty += 1;
            }
            self.cand_scratch = candidates;
            return;
        }
        match self.config.policy {
            SchedulerPolicy::Gto => {
                candidates.sort_by_key(|&w| self.warps[w].as_ref().map_or(u64::MAX, |wc| wc.age));
                if let Some(last) = self.last_warp[s] {
                    if let Some(pos) = candidates.iter().position(|&w| w == last) {
                        let w = candidates.remove(pos);
                        candidates.insert(0, w);
                    }
                }
            }
            SchedulerPolicy::Lrr => {
                // Rotate so the warp after the last-issued goes first.
                if let Some(last) = self.last_warp[s] {
                    let pivot = candidates.iter().position(|&w| w > last).unwrap_or(0);
                    candidates.rotate_left(pivot);
                }
            }
        }

        let mut blocked = StallBreakdown::default();
        let mut issued = false;
        for &w in &candidates {
            match self.try_issue(w, s) {
                IssueResult::Issued => {
                    self.last_warp[s] = Some(w);
                    issued = true;
                    break;
                }
                IssueResult::DepBlocked => blocked.data_dependency += 1,
                IssueResult::LdstFull => blocked.ldst_full += 1,
                IssueResult::TensorBusy => blocked.tensor_busy += 1,
            }
        }
        if issued {
            self.progress = true;
        } else {
            // Nothing issued: classify the cycle by the most actionable
            // cause.
            classify_stall(&mut self.stats.stalls, &blocked, 1);
        }
        self.cand_scratch = candidates;
    }

    fn try_issue(&mut self, w: usize, s: usize) -> IssueResult {
        let cycle = self.cycle;
        let op = {
            let wc = self.warps[w].as_ref().expect("candidate exists");
            let Some(op) = wc.next_op() else {
                return IssueResult::DepBlocked;
            };
            let op = *op;
            if !wc.deps_ready(&op, cycle) {
                return IssueResult::DepBlocked;
            }
            op
        };
        match op {
            Op::Alu { dst, latency } => {
                let wc = self.warps[w].as_mut().expect("exists");
                if let Some(d) = dst {
                    wc.mark_pending(d, cycle + u64::from(latency));
                }
                wc.pc += 1;
                self.stats.issued_other += 1;
                IssueResult::Issued
            }
            Op::WmmaMma { d, .. } => {
                let ii = u64::from(self.config.mma_ii);
                let Some(tc) = self.tc_busy[s].iter_mut().find(|b| **b <= cycle) else {
                    return IssueResult::TensorBusy;
                };
                *tc = cycle + ii;
                let wc = self.warps[w].as_mut().expect("exists");
                // Accumulator forwarding: chained MMAs sustain the
                // initiation interval; consumers see the result after ii.
                wc.mark_pending(d, cycle + ii);
                wc.pc += 1;
                self.stats.issued_mma += 1;
                IssueResult::Issued
            }
            Op::Bar => {
                let wc = self.warps[w].as_mut().expect("exists");
                wc.at_barrier = true;
                let cta = wc.cta_slot;
                wc.pc += 1;
                let bit = 1u64 << (w / self.config.schedulers);
                self.run_mask[s] &= !bit;
                self.barrier_mask[s] |= bit;
                self.ctas[cta].as_mut().expect("live cta").at_barrier += 1;
                self.stats.issued_other += 1;
                IssueResult::Issued
            }
            Op::Exit => {
                // Drain: wait for all pending writes before exiting so that
                // binding release cannot race in-flight loads.
                {
                    let wc = self.warps[w].as_ref().expect("exists");
                    if wc.pending.values().any(|&r| r > cycle) {
                        return IssueResult::DepBlocked;
                    }
                }
                self.finish_warp(w);
                self.stats.issued_other += 1;
                IssueResult::Issued
            }
            Op::WmmaLoad {
                dst,
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            } => self.issue_mem(
                w,
                s,
                MemKind::TensorLoad,
                Some(dst),
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            ),
            Op::WmmaStore {
                src: _,
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            } => self.issue_mem(
                w,
                s,
                MemKind::TensorStore,
                None,
                addr,
                rows,
                seg_bytes,
                row_stride,
                space,
            ),
            Op::Ld {
                dst,
                addr,
                bytes,
                space,
            } => {
                let rows = bytes.div_ceil(32).max(1) as u8;
                self.issue_mem(
                    w,
                    s,
                    MemKind::ScalarLoad,
                    Some(dst),
                    addr,
                    rows,
                    32,
                    32,
                    space,
                )
            }
            Op::St {
                src: _,
                addr,
                bytes,
                space,
            } => {
                let rows = bytes.div_ceil(32).max(1) as u8;
                self.issue_mem(w, s, MemKind::ScalarStore, None, addr, rows, 32, 32, space)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_mem(
        &mut self,
        w: usize,
        s: usize,
        kind: MemKind,
        dst: Option<duplo_isa::ArchReg>,
        addr: u64,
        rows: u8,
        seg_bytes: u16,
        row_stride: u64,
        space: Space,
    ) -> IssueResult {
        if !self.ldst[s].can_accept() {
            return IssueResult::LdstFull;
        }
        let wc = self.warps[w].as_mut().expect("exists");
        if let Some(d) = dst {
            wc.mark_pending(d, u64::MAX);
        }
        wc.pc += 1;
        self.ldst[s].push(Inflight {
            warp: w,
            kind,
            dst,
            addr,
            rows,
            seg_bytes,
            row_stride,
            space,
            next_row: 0,
            ready: 0,
            pregs: self.preg_pool.pop().unwrap_or_default(),
            tokens: self.token_pool.pop().unwrap_or_default(),
        });
        match kind {
            MemKind::TensorLoad => self.stats.issued_tensor_loads += 1,
            _ => self.stats.issued_other += 1,
        }
        IssueResult::Issued
    }

    /// LDST pipe `s`: process one row of the head instruction.
    fn tick_ldst(&mut self, s: usize) {
        let (kind, row_addr, seg, space) = {
            let Some(head) = self.ldst[s].head_mut() else {
                return;
            };
            (
                head.kind,
                head.row_addr(head.next_row),
                u32::from(head.seg_bytes),
                head.space,
            )
        };
        match self.process_row(kind, row_addr, seg, space) {
            RowOutcome::Stall => {
                self.stats.ldst_pipe_stalls += 1;
            }
            RowOutcome::Done { ready, preg, token } => {
                self.progress = true;
                let done = {
                    let head = self.ldst[s].head_mut().expect("head exists");
                    head.next_row += 1;
                    head.ready = head.ready.max(ready);
                    if let Some(p) = preg {
                        head.pregs.push(p);
                    }
                    if let Some(t) = token {
                        head.tokens.push(t);
                    }
                    head.complete()
                };
                if done {
                    let infl = self.ldst[s].pop().expect("head exists");
                    self.finish_mem(infl);
                }
            }
        }
    }

    /// Handles one row-sector of a memory instruction.
    fn process_row(&mut self, kind: MemKind, addr: u64, seg: u32, space: Space) -> RowOutcome {
        let cycle = self.cycle;
        match (kind, space) {
            (MemKind::TensorLoad, Space::Shared)
                if self.config.lhb_on_shared && self.detect.is_some() =>
            {
                self.process_tensor_row_shared(addr, seg)
            }
            (_, Space::Shared) => {
                self.stats.services.shared += 1;
                RowOutcome::Done {
                    ready: cycle + u64::from(self.config.shared_latency),
                    preg: None,
                    token: None,
                }
            }
            (MemKind::TensorStore | MemKind::ScalarStore, Space::Global) => {
                self.hierarchy.store(cycle, addr, seg);
                if let Some(du) = self.detect.as_mut() {
                    let released = du.store(addr, u64::from(seg));
                    for p in released {
                        self.regfile.release(p);
                    }
                }
                RowOutcome::Done {
                    ready: cycle,
                    preg: None,
                    token: None,
                }
            }
            (MemKind::ScalarLoad, Space::Global) => {
                if !self.hierarchy.can_accept(cycle) {
                    return RowOutcome::Stall;
                }
                let (ready, lvl) = self
                    .hierarchy
                    .load(cycle, addr, seg)
                    .expect("can_accept checked");
                self.stats.services.count(lvl);
                RowOutcome::Done {
                    ready,
                    preg: None,
                    token: None,
                }
            }
            (MemKind::TensorLoad, Space::Global) => self.process_tensor_row(addr, seg),
        }
    }

    /// A shared-memory tensor-core load row under the implicit-GEMM
    /// extension: a detection hit replaces the shared-memory access with
    /// register renaming (2-cycle detection latency instead of the
    /// shared-memory pipeline latency); misses fall through to shared
    /// memory and allocate an entry.
    fn process_tensor_row_shared(&mut self, addr: u64, seg: u32) -> RowOutcome {
        let cycle = self.cycle;
        // Under register-file pressure, force-retire the oldest pending
        // load commitments to reclaim the rows their LHB entries pin —
        // same relief path as the global route below.
        let preg = match self.regfile.alloc() {
            Some(p) => p,
            None => {
                self.force_retire(64);
                match self.regfile.alloc() {
                    Some(p) => p,
                    None => return RowOutcome::Stall,
                }
            }
        };
        self.stats.row_loads += 1;
        let token = LoadToken(self.next_token);
        self.next_token += 1;
        let du = self.detect.as_mut().expect("checked by caller");
        match du.probe_load(addr, u64::from(seg), token) {
            LoadDecision::Hit { preg: dup } => {
                let latency = u64::from(du.latency);
                self.regfile.release(preg);
                self.regfile.addref(dup);
                self.stats.services.lhb += 1;
                self.stats.eliminated_loads += 1;
                RowOutcome::Done {
                    ready: cycle + latency,
                    preg: Some(dup),
                    token: Some(token),
                }
            }
            LoadDecision::Miss => {
                self.regfile.addref(preg);
                if let Some(displaced) = du.record_fill(addr, u64::from(seg), preg, token) {
                    self.regfile.release(displaced);
                }
                self.stats.services.shared += 1;
                RowOutcome::Done {
                    ready: cycle + u64::from(self.config.shared_latency),
                    preg: Some(preg),
                    token: Some(token),
                }
            }
            LoadDecision::Bypass => {
                self.stats.services.shared += 1;
                RowOutcome::Done {
                    ready: cycle + u64::from(self.config.shared_latency),
                    preg: Some(preg),
                    token: None,
                }
            }
        }
    }

    /// One tensor-core load row: the Duplo-eligible path.
    fn process_tensor_row(&mut self, addr: u64, seg: u32) -> RowOutcome {
        let cycle = self.cycle;
        if !self.hierarchy.can_accept(cycle) {
            return RowOutcome::Stall;
        }
        // Physical destination row (released again on an LHB hit). Under
        // register-file pressure, force-retire the oldest pending loads to
        // reclaim the rows their LHB entries pin.
        let preg = match self.regfile.alloc() {
            Some(p) => p,
            None => {
                self.force_retire(64);
                match self.regfile.alloc() {
                    Some(p) => p,
                    None => return RowOutcome::Stall,
                }
            }
        };
        self.stats.row_loads += 1;
        let token = LoadToken(self.next_token);
        self.next_token += 1;

        if let Some(du) = self.detect.as_mut() {
            match du.probe_load(addr, u64::from(seg), token) {
                LoadDecision::Hit { preg: dup } => {
                    // Cancelled L1 request still consumed an L1 probe
                    // (paper §V-H), but no state change or traffic.
                    self.regfile.release(preg);
                    self.regfile.addref(dup);
                    self.stats.services.lhb += 1;
                    self.stats.eliminated_loads += 1;
                    if self.stats.rename_pairs.len() < self.config.rename_log_cap {
                        if let Some(&src) = self.fill_addr.get(&dup.0) {
                            self.stats.rename_pairs.push((src, addr));
                        }
                    }
                    return RowOutcome::Done {
                        ready: cycle + u64::from(du.latency),
                        preg: Some(dup),
                        token: Some(token),
                    };
                }
                LoadDecision::Miss => {
                    let (ready, lvl) = self
                        .hierarchy
                        .load(cycle, addr, seg)
                        .expect("can_accept checked");
                    self.stats.services.count(lvl);
                    let mut ready = ready;
                    if self.config.octet_dup {
                        if let Some((r2, _)) = self.hierarchy.load(cycle, addr, seg) {
                            self.stats.octet_dup_l1 += 1;
                            ready = ready.max(r2);
                        }
                    }
                    // The LHB entry takes its own reference to the filled
                    // register, keeping the value alive across architectural
                    // rebinding until the entry is released (paper §IV-B).
                    self.regfile.addref(preg);
                    let du = self.detect.as_mut().expect("still present");
                    if let Some(displaced) = du.record_fill(addr, u64::from(seg), preg, token) {
                        self.regfile.release(displaced);
                    }
                    if self.config.rename_log_cap > 0 {
                        self.fill_addr.insert(preg.0, addr);
                    }
                    return RowOutcome::Done {
                        ready,
                        preg: Some(preg),
                        token: Some(token),
                    };
                }
                LoadDecision::Bypass => {}
            }
        }
        // Baseline path (no detection unit, or bypassed).
        let (ready, lvl) = self
            .hierarchy
            .load(cycle, addr, seg)
            .expect("can_accept checked");
        self.stats.services.count(lvl);
        let mut ready = ready;
        if self.config.octet_dup {
            if let Some((r2, _)) = self.hierarchy.load(cycle, addr, seg) {
                self.stats.octet_dup_l1 += 1;
                ready = ready.max(r2);
            }
        }
        RowOutcome::Done {
            ready,
            preg: Some(preg),
            token: None,
        }
    }

    /// Early-retires up to `n` of the oldest scheduled load commitments,
    /// releasing the physical rows their LHB entries pin (register-file
    /// pressure relief).
    fn force_retire(&mut self, n: usize) {
        for _ in 0..n {
            let Some(Reverse((_, token))) = self.retire_queue.pop() else {
                return;
            };
            if let Some(du) = self.detect.as_mut() {
                if let Some(p) = du.retire(LoadToken(token)) {
                    self.regfile.release(p);
                }
            }
        }
    }

    /// A memory macro-instruction finished all its rows.
    fn finish_mem(&mut self, infl: Inflight) {
        let ready = infl.ready;
        let commit = ready.saturating_add(u64::from(self.config.commit_delay));
        // Schedule commit-time retirement: the LHB entries created (or
        // relayed to) this load's tokens are released then, dropping the
        // LHB's references to the physical rows. Architectural rebinding
        // below does NOT release entries — the physical value stays alive
        // for renaming until retirement (paper §IV-B).
        for t in &infl.tokens {
            self.retire_queue.push(Reverse((commit, t.0)));
        }
        let mut tokens = infl.tokens;
        tokens.clear();
        self.token_pool.push(tokens);
        let warp_done = self.warps[infl.warp].as_ref().is_none_or(|wc| wc.done);
        if warp_done {
            // The warp exited (only possible if it had no pending regs, so
            // this cannot be a load of a live register) — drop this load's
            // own references; LHB references drain via the retire queue.
            self.release_into_pool(infl.pregs);
            return;
        }
        if let Some(dst) = infl.dst {
            let wc = self.warps[infl.warp].as_mut().expect("live warp");
            wc.resolve_pending(dst, ready);
            let old = wc.bindings.insert(dst, infl.pregs);
            if let Some(old_pregs) = old {
                self.release_into_pool(old_pregs);
            }
        } else {
            self.release_into_pool(infl.pregs);
        }
    }

    /// Releases every row in `pregs` and recycles the vector.
    fn release_into_pool(&mut self, mut pregs: Vec<PhysReg>) {
        for &p in &pregs {
            self.regfile.release(p);
        }
        pregs.clear();
        self.preg_pool.push(pregs);
    }

    /// Issues warp exit: release every binding, update CTA accounting.
    fn finish_warp(&mut self, w: usize) {
        let wc = self.warps[w].take().expect("warp exists");
        self.run_mask[w % self.config.schedulers] &= !(1u64 << (w / self.config.schedulers));
        for (_, pregs) in wc.bindings {
            self.release_into_pool(pregs);
        }
        let cta = self.ctas[wc.cta_slot].as_mut().expect("live cta");
        cta.live_warps -= 1;
        if cta.live_warps == 0 {
            self.shared_in_use -= cta.shared_bytes;
            self.ctas[wc.cta_slot] = None;
            self.stats.ctas_run += 1;
            let cycle = self.cycle;
            if let Some(t) = self.tracer.as_mut() {
                t.cta_end(wc.cta_slot, cycle);
            }
        }
    }

    /// Finalizes and returns statistics plus the recorded trace (when a
    /// tracer was attached). A final end-of-run sample is appended so the
    /// timeline always closes on counters equal to the returned stats.
    pub fn into_stats_and_trace(mut self) -> (SmStats, Option<SmTraceData>) {
        let mut tracer = self.tracer.take();
        if let Some(t) = tracer.as_mut() {
            let sample = self.sample_now();
            t.push_final_sample(sample);
        }
        let trace = tracer.map(|t| t.data);
        (self.into_stats(), trace)
    }

    /// Finalizes and returns statistics.
    pub fn into_stats(mut self) -> SmStats {
        self.stats.cycles = self.cycle;
        self.stats.rf_peak_rows = self.regfile.peak();
        if let Some(du) = &self.detect {
            self.stats.detect = du.stats();
            self.stats.lhb = du.lhb_stats();
        }
        self.stats.mem = self.hierarchy.stats();
        self.stats.slices = self.hierarchy.slice_stats();
        // Drain the retire queue (counters were snapshotted above, so the
        // late retirements don't perturb reported LHB stats). Afterwards no
        // LHB entry pins a row and every warp has released its bindings, so
        // any nonzero residue is a genuine reference-count leak.
        while let Some(Reverse((_, token))) = self.retire_queue.pop() {
            if let Some(du) = self.detect.as_mut() {
                if let Some(p) = du.retire(LoadToken(token)) {
                    self.regfile.release(p);
                }
            }
        }
        self.stats.rf_final_rows = self.regfile.in_use();
        self.stats
    }

    /// Live statistics view (cycle count not yet finalized).
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }
}

enum IssueResult {
    Issued,
    DepBlocked,
    LdstFull,
    TensorBusy,
}

/// Drives `sm` until all of `cta_ids` have launched and drained.
fn drive(sm: &mut Sm, kernel: &dyn Kernel, cta_ids: &[usize]) {
    let mut backlog: VecDeque<usize> = cta_ids.iter().copied().collect();
    const LIMIT: u64 = 2_000_000_000;
    loop {
        while let Some(&next) = backlog.front() {
            if sm.try_launch(kernel, next) {
                backlog.pop_front();
            } else {
                break;
            }
        }
        if backlog.is_empty() && sm.idle() {
            break;
        }
        sm.tick();
        assert!(
            sm.cycle() < LIMIT,
            "simulation exceeded {LIMIT} cycles — deadlock?"
        );
    }
    SIM_CYCLES.fetch_add(sm.cycle(), Ordering::Relaxed);
    SIM_SKIPS.fetch_add(sm.skips_taken, Ordering::Relaxed);
    SIM_SKIPPED_CYCLES.fetch_add(sm.cycles_skipped, Ordering::Relaxed);
    SIM_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Runs `cta_ids` of `kernel` to completion on one SM and returns the
/// statistics.
///
/// # Panics
///
/// Panics if the simulation exceeds two billion cycles (deadlock guard).
pub fn run_kernel(kernel: &dyn Kernel, cta_ids: &[usize], config: SmConfig) -> SmStats {
    run_kernel_mode(kernel, cta_ids, config, false)
}

/// Like [`run_kernel`], but forces the tick-by-tick reference loop for
/// this run regardless of process-wide settings. Statistics are
/// byte-identical to [`run_kernel`]'s — the equivalence suite asserts
/// exactly that — only wall-clock time differs.
pub fn run_kernel_reference(kernel: &dyn Kernel, cta_ids: &[usize], config: SmConfig) -> SmStats {
    run_kernel_mode(kernel, cta_ids, config, true)
}

/// [`run_kernel`] with the loop mode selected by value: `reference: true`
/// forces the tick-by-tick reference loop for this run only, without
/// touching the process-wide [`force_tick_reference`] flag, so concurrent
/// runs can mix modes. `false` still defers to the process-wide settings
/// (`DUPLO_TICK_REFERENCE`, the forced flag), preserving the historical
/// behavior of [`run_kernel`].
pub fn run_kernel_mode(
    kernel: &dyn Kernel,
    cta_ids: &[usize],
    config: SmConfig,
    reference: bool,
) -> SmStats {
    let mut sm = Sm::new(config, kernel);
    if reference {
        sm.set_event_skip(false);
    }
    drive(&mut sm, kernel, cta_ids);
    sm.into_stats()
}

/// Like [`run_kernel`], but records a cycle-resolved trace per `spec`.
///
/// # Panics
///
/// Panics if the simulation exceeds two billion cycles (deadlock guard).
pub fn run_kernel_traced(
    kernel: &dyn Kernel,
    cta_ids: &[usize],
    config: SmConfig,
    spec: TraceSpec,
) -> (SmStats, SmTraceData) {
    run_kernel_traced_mode(kernel, cta_ids, config, spec, false)
}

/// Like [`run_kernel_traced`], but on the tick-by-tick reference loop (the
/// traced counterpart of [`run_kernel_reference`]).
pub fn run_kernel_traced_reference(
    kernel: &dyn Kernel,
    cta_ids: &[usize],
    config: SmConfig,
    spec: TraceSpec,
) -> (SmStats, SmTraceData) {
    run_kernel_traced_mode(kernel, cta_ids, config, spec, true)
}

/// [`run_kernel_traced`] with the loop mode selected by value (the traced
/// counterpart of [`run_kernel_mode`]).
pub fn run_kernel_traced_mode(
    kernel: &dyn Kernel,
    cta_ids: &[usize],
    config: SmConfig,
    spec: TraceSpec,
    reference: bool,
) -> (SmStats, SmTraceData) {
    let mut sm = Sm::new(config, kernel);
    if reference {
        sm.set_event_skip(false);
    }
    sm.attach_tracer(spec);
    drive(&mut sm, kernel, cta_ids);
    let (stats, trace) = sm.into_stats_and_trace();
    (stats, trace.expect("tracer attached above"))
}
