//! SM configuration (paper Table III).

use duplo_core::LhbConfig;
use duplo_mem::HierarchyConfig;

/// Warp scheduling policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest (Table III baseline): keep issuing from the last
    /// warp until it stalls, then fall back to the oldest ready warp.
    Gto,
    /// Loose round-robin (comparison point).
    Lrr,
}

/// Configuration of one simulated SM.
#[derive(Clone, Debug)]
pub struct SmConfig {
    /// Warp schedulers per SM (Table III: 4).
    pub schedulers: usize,
    /// Maximum resident warps (Table III: 64).
    pub max_warps: usize,
    /// Maximum resident CTAs (Table III: 32).
    pub max_ctas: usize,
    /// Shared memory capacity in bytes (Volta: 96 KB configurable).
    pub shared_mem_bytes: u32,
    /// Tensor cores per SM (Table III: 8 — two per scheduler).
    pub tensor_cores: usize,
    /// Register file bytes per SM (Table III: 256 KB). Physical row slots
    /// are 32 B each (one 16-half row-segment across the warp).
    pub regfile_bytes: usize,
    /// Initiation interval of one `wmma.mma` on a tensor core.
    pub mma_ii: u32,
    /// Shared-memory access latency.
    pub shared_latency: u32,
    /// LDST queue depth per scheduler.
    pub ldst_queue: usize,
    /// Cycles after a load's writeback at which it commits and its LHB
    /// entry (if unrelayed) is released (§IV-B retirement rule). The
    /// default models the long in-order retirement lag of a congested
    /// memory-bound pipeline; the paper's oracle saturation (~76% of a
    /// ~89% ceiling) pins this window to a few thousand cycles. Under
    /// register-file pressure entries are force-retired earlier.
    pub commit_delay: u32,
    /// Model the octet double-load of tensor-core operands (§II-B: each
    /// half of A and B is loaded twice by different octets; the duplicate
    /// goes to the L1 as an extra access).
    pub octet_dup: bool,
    /// Scheduler policy.
    pub policy: SchedulerPolicy,
    /// Memory hierarchy slice for this SM.
    pub hierarchy: HierarchyConfig,
    /// Duplo detection unit configuration (`None` = baseline GPU).
    pub lhb: Option<LhbConfig>,
    /// Extension (paper §V-D): also probe the detection unit on
    /// *shared-memory* tensor-core loads whose addresses carry workspace
    /// identity — the implicit-GEMM case, where Duplo turns shared-memory
    /// accesses into register renaming.
    pub lhb_on_shared: bool,
    /// Override for the detection-unit latency (default 2; paper evaluates
    /// 3 with ~0.9% degradation).
    pub detect_latency: u32,
    /// How many rename (hit) address pairs to record for functional
    /// validation (0 disables).
    pub rename_log_cap: usize,
}

impl SmConfig {
    /// The Table III Titan V-like baseline, with the hierarchy sliced for
    /// one representative SM out of `total_sms`.
    pub fn titan_v(total_sms: usize) -> SmConfig {
        SmConfig {
            schedulers: 4,
            max_warps: 64,
            max_ctas: 32,
            shared_mem_bytes: 96 * 1024,
            tensor_cores: 8,
            regfile_bytes: 256 * 1024,
            mma_ii: 8,
            shared_latency: 24,
            ldst_queue: 8,
            commit_delay: 4096,
            octet_dup: true,
            policy: SchedulerPolicy::Gto,
            hierarchy: HierarchyConfig::titan_v_slice(total_sms),
            lhb: None,
            lhb_on_shared: false,
            detect_latency: 2,
            rename_log_cap: 0,
        }
    }

    /// Same configuration with Duplo enabled using `lhb`.
    pub fn with_duplo(mut self, lhb: LhbConfig) -> SmConfig {
        self.lhb = Some(lhb);
        self
    }

    /// Physical register-file capacity in 32-byte row slots.
    pub fn regfile_rows(&self) -> u32 {
        (self.regfile_bytes / 32) as u32
    }

    /// Tensor cores per scheduler.
    pub fn tensor_cores_per_scheduler(&self) -> usize {
        (self.tensor_cores / self.schedulers).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let c = SmConfig::titan_v(80);
        assert_eq!(c.schedulers, 4);
        assert_eq!(c.max_warps, 64);
        assert_eq!(c.max_ctas, 32);
        assert_eq!(c.tensor_cores, 8);
        assert_eq!(c.regfile_rows(), 8192);
        assert_eq!(c.tensor_cores_per_scheduler(), 2);
        assert!(c.lhb.is_none(), "baseline has no detection unit");
    }

    #[test]
    fn with_duplo_sets_lhb() {
        let c = SmConfig::titan_v(80).with_duplo(LhbConfig::paper_default());
        assert_eq!(c.lhb.unwrap().entries, 1024);
    }
}
