//! Per-warp execution state: program counter, scoreboard, register
//! bindings.

use duplo_core::PhysReg;
use duplo_isa::{ArchReg, Op};
use std::collections::{BTreeMap, HashMap};

/// Scoreboard entry: the cycle at which a register's pending write
/// completes (`u64::MAX` while the completion time is unknown, e.g. an
/// in-flight load).
pub type ReadyCycle = u64;

/// One resident warp.
#[derive(Clone, Debug)]
pub struct WarpCtx {
    /// Instruction stream.
    pub ops: Vec<Op>,
    /// Next instruction index.
    pub pc: usize,
    /// Local slot of the CTA this warp belongs to.
    pub cta_slot: usize,
    /// True once `Exit` has been issued.
    pub done: bool,
    /// True while waiting at a barrier.
    pub at_barrier: bool,
    /// Pending register writes: reg -> completion cycle.
    pub pending: HashMap<ArchReg, ReadyCycle>,
    /// Current physical row slots bound to each fragment register.
    pub bindings: BTreeMap<ArchReg, Vec<PhysReg>>,
    /// Launch order (for oldest-first scheduling).
    pub age: u64,
}

impl WarpCtx {
    /// Creates a warp over `ops`.
    pub fn new(ops: Vec<Op>, cta_slot: usize, age: u64) -> WarpCtx {
        WarpCtx {
            ops,
            pc: 0,
            cta_slot,
            done: false,
            at_barrier: false,
            pending: HashMap::new(),
            bindings: BTreeMap::new(),
            age,
        }
    }

    /// The next instruction, if the warp is still running.
    pub fn next_op(&self) -> Option<&Op> {
        if self.done || self.at_barrier {
            None
        } else {
            self.ops.get(self.pc)
        }
    }

    /// Whether every source (and the destination, WAW) of `op` is ready at
    /// `cycle`.
    pub fn deps_ready(&self, op: &Op, cycle: u64) -> bool {
        for src in op.srcs().into_iter().flatten() {
            if self.pending.get(&src).is_some_and(|&r| r > cycle) {
                return false;
            }
        }
        if let Some(dst) = op.dst() {
            if self.pending.get(&dst).is_some_and(|&r| r > cycle) {
                return false;
            }
        }
        true
    }

    /// Marks `reg` pending until `ready`.
    pub fn mark_pending(&mut self, reg: ArchReg, ready: ReadyCycle) {
        self.pending.insert(reg, ready);
    }

    /// Resolves a pending write (e.g. a load completing) to a concrete
    /// cycle.
    pub fn resolve_pending(&mut self, reg: ArchReg, ready: ReadyCycle) {
        self.pending.insert(reg, ready);
    }

    /// Garbage-collects scoreboard entries older than `cycle` (keeps the
    /// map small over long runs).
    pub fn gc_pending(&mut self, cycle: u64) {
        self.pending.retain(|_, &mut r| r > cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplo_isa::Space;

    #[test]
    fn deps_block_until_ready() {
        let mma = Op::WmmaMma {
            d: ArchReg(4),
            a: ArchReg(0),
            b: ArchReg(1),
            c: ArchReg(4),
        };
        let mut w = WarpCtx::new(vec![mma, Op::Exit], 0, 0);
        assert!(w.deps_ready(&mma, 10));
        w.mark_pending(ArchReg(0), 50);
        assert!(!w.deps_ready(&mma, 10));
        assert!(w.deps_ready(&mma, 50));
    }

    #[test]
    fn waw_hazard_blocks() {
        let ld = Op::WmmaLoad {
            dst: ArchReg(2),
            addr: 0,
            rows: 16,
            seg_bytes: 32,
            row_stride: 64,
            space: Space::Global,
        };
        let mut w = WarpCtx::new(vec![ld, Op::Exit], 0, 0);
        w.mark_pending(ArchReg(2), u64::MAX);
        assert!(!w.deps_ready(&ld, 100), "WAW on in-flight load must block");
    }

    #[test]
    fn gc_drops_completed_entries() {
        let mut w = WarpCtx::new(vec![Op::Exit], 0, 0);
        w.mark_pending(ArchReg(0), 10);
        w.mark_pending(ArchReg(1), 100);
        w.gc_pending(50);
        assert!(!w.pending.contains_key(&ArchReg(0)));
        assert!(w.pending.contains_key(&ArchReg(1)));
    }

    #[test]
    fn next_op_respects_barrier_and_done() {
        let mut w = WarpCtx::new(vec![Op::Bar, Op::Exit], 0, 0);
        assert!(w.next_op().is_some());
        w.at_barrier = true;
        assert!(w.next_op().is_none());
        w.at_barrier = false;
        w.done = true;
        assert!(w.next_op().is_none());
    }
}
