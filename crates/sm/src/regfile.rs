//! Physical register file with reference-counted row slots.
//!
//! A *row slot* holds one 16-half row-segment of a tensor-core fragment
//! (32 bytes across the warp). A fragment binding is a vector of row slots.
//! Duplo hits add a reference to an existing slot instead of allocating a
//! new one — which is both how renaming avoids the memory request and how
//! the register-file occupancy savings the paper mentions arise.

use duplo_core::PhysReg;

/// The SM physical register file (row-slot granularity).
#[derive(Clone, Debug)]
pub struct PhysRegFile {
    refcnt: Vec<u32>,
    free: Vec<u32>,
    in_use: u32,
    peak: u32,
    alloc_failures: u64,
}

impl PhysRegFile {
    /// Creates a register file with `rows` row slots.
    pub fn new(rows: u32) -> PhysRegFile {
        assert!(rows > 0, "register file needs capacity");
        PhysRegFile {
            refcnt: vec![0; rows as usize],
            free: (0..rows).rev().collect(),
            in_use: 0,
            peak: 0,
            alloc_failures: 0,
        }
    }

    /// Allocates a fresh row slot (refcount 1), or `None` when the file is
    /// exhausted (the issuing warp must stall).
    pub fn alloc(&mut self) -> Option<PhysReg> {
        match self.free.pop() {
            Some(idx) => {
                self.refcnt[idx as usize] = 1;
                self.in_use += 1;
                self.peak = self.peak.max(self.in_use);
                Some(PhysReg(idx))
            }
            None => {
                self.alloc_failures += 1;
                None
            }
        }
    }

    /// Adds a reference to `reg` (a Duplo rename hit).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not currently live — renaming to a dead register
    /// would be a soundness bug, so this is intentionally fatal.
    pub fn addref(&mut self, reg: PhysReg) {
        let rc = &mut self.refcnt[reg.0 as usize];
        assert!(*rc > 0, "rename to dead physical register {reg}");
        *rc += 1;
    }

    /// Drops a reference; frees the slot at zero.
    ///
    /// # Panics
    ///
    /// Panics on double-free.
    pub fn release(&mut self, reg: PhysReg) {
        let rc = &mut self.refcnt[reg.0 as usize];
        assert!(*rc > 0, "double free of physical register {reg}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(reg.0);
            self.in_use -= 1;
        }
    }

    /// Reference count of a slot (diagnostics).
    pub fn refcount(&self, reg: PhysReg) -> u32 {
        self.refcnt[reg.0 as usize]
    }

    /// Currently live slots.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Peak live slots over the run.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Times `alloc` failed for lack of capacity.
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_cycle() {
        let mut rf = PhysRegFile::new(4);
        let a = rf.alloc().unwrap();
        let b = rf.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(rf.in_use(), 2);
        rf.release(a);
        assert_eq!(rf.in_use(), 1);
        let c = rf.alloc().unwrap();
        assert_eq!(c, a, "freed slot is reused");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = PhysRegFile::new(2);
        let _a = rf.alloc().unwrap();
        let _b = rf.alloc().unwrap();
        assert!(rf.alloc().is_none());
        assert_eq!(rf.alloc_failures(), 1);
    }

    #[test]
    fn refcounting_keeps_shared_slot_alive() {
        let mut rf = PhysRegFile::new(2);
        let a = rf.alloc().unwrap();
        rf.addref(a); // renamed by a second fragment
        rf.release(a);
        assert_eq!(rf.in_use(), 1, "still referenced");
        assert_eq!(rf.refcount(a), 1);
        rf.release(a);
        assert_eq!(rf.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "dead physical register")]
    fn addref_dead_slot_is_fatal() {
        let mut rf = PhysRegFile::new(2);
        let a = rf.alloc().unwrap();
        rf.release(a);
        rf.addref(a);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut rf = PhysRegFile::new(8);
        let regs: Vec<_> = (0..5).map(|_| rf.alloc().unwrap()).collect();
        for r in &regs {
            rf.release(*r);
        }
        assert_eq!(rf.peak(), 5);
        assert_eq!(rf.in_use(), 0);
    }
}
