//! Cycle-resolved tracing of one SM run.
//!
//! When a [`TraceSpec`] is attached to an [`crate::Sm`] (via
//! [`crate::run_kernel_traced`]), the SM snapshots its counters every
//! `interval` cycles into a compact, append-only timeline and records a
//! begin/end span for every CTA it executes. All buffers are hard-capped:
//! once full, new entries are *counted as dropped* rather than silently
//! truncated, so a consumer can always tell whether the timeline is
//! complete.
//!
//! Samples are cumulative snapshots (not deltas): consumers difference
//! adjacent samples to recover per-window rates, and the final sample —
//! always pushed at run end, even when the periodic buffer is full —
//! equals the end-of-run totals, which higher layers use to cross-check
//! the timeline against [`crate::SmStats`].

/// Tracing parameters for one SM run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceSpec {
    /// Cycles between samples. Must be non-zero.
    pub interval: u64,
    /// Maximum CTA spans recorded before further spans are dropped
    /// (counted in [`SmTraceData::dropped_spans`]).
    pub span_cap: usize,
    /// Maximum periodic samples recorded before further samples are
    /// dropped (counted in [`SmTraceData::dropped_samples`]). The final
    /// end-of-run sample is exempt from the cap.
    pub sample_cap: usize,
}

impl Default for TraceSpec {
    fn default() -> TraceSpec {
        TraceSpec {
            interval: 1024,
            span_cap: 4096,
            sample_cap: 65536,
        }
    }
}

/// A cumulative counter snapshot taken at one sample point.
///
/// Counter fields are monotone over a run; gauge fields
/// (`mshr_occupancy`, `l2_backlog`, `dram_backlog`) are instantaneous.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct SmSample {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// MMA instructions issued so far.
    pub issued_mma: u64,
    /// Tensor-core load instructions issued so far.
    pub issued_tensor_loads: u64,
    /// Other instructions issued so far.
    pub issued_other: u64,
    /// Scheduler slots with no runnable warp.
    pub stall_empty: u64,
    /// Scheduler slots blocked on operand dependencies.
    pub stall_data_dependency: u64,
    /// Scheduler slots blocked on a full LDST queue.
    pub stall_ldst_full: u64,
    /// Scheduler slots blocked on busy tensor cores.
    pub stall_tensor_busy: u64,
    /// Scheduler slots parked at barriers.
    pub stall_barrier: u64,
    /// LDST pipe stall cycles (MSHR full / RF pressure).
    pub ldst_pipe_stalls: u64,
    /// LHB probe hits so far (zero for baseline runs).
    pub lhb_hits: u64,
    /// LHB probe misses so far (zero for baseline runs).
    pub lhb_misses: u64,
    /// Load row-segments served by LHB renaming.
    pub serv_lhb: u64,
    /// Load row-segments served by the L1.
    pub serv_l1: u64,
    /// Load row-segments served by the L2.
    pub serv_l2: u64,
    /// Load row-segments served by DRAM.
    pub serv_dram: u64,
    /// Load row-segments served by shared memory.
    pub serv_shared: u64,
    /// L1 sector hits so far.
    pub l1_hits: u64,
    /// L1 sector misses so far.
    pub l1_misses: u64,
    /// Accesses that reached the L2 slice so far.
    pub l2_accesses: u64,
    /// Accesses that reached DRAM so far.
    pub dram_accesses: u64,
    /// Outstanding MSHR fills at the sample point (gauge).
    pub mshr_occupancy: u64,
    /// MSHR occupancy high-water mark so far.
    pub mshr_peak: u64,
    /// L2-port backlog at the sample point, in cycles (gauge; summed over
    /// slices when the sliced memory side is in use).
    pub l2_backlog: f64,
    /// DRAM-server backlog at the sample point, in cycles (gauge; summed
    /// over slices when the sliced memory side is in use).
    pub dram_backlog: f64,
    /// Worst single-L2-slice backlog at the sample point, in cycles
    /// (gauge; zero on the flat memory side).
    pub slice_backlog_max: f64,
    /// Backlog summed over all L2 slices at the sample point, in cycles
    /// (gauge; zero on the flat memory side).
    pub slice_backlog_sum: f64,
    /// Index of the hottest L2 slice at the sample point (gauge; zero on
    /// the flat memory side). Makes slice camping visible on timelines.
    pub hot_slice: u64,
}

/// One CTA's residency on the SM.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CtaSpan {
    /// CTA index within the kernel launch.
    pub cta: u64,
    /// Cycle at which the CTA was launched onto the SM.
    pub begin: u64,
    /// Cycle at which the CTA's last warp exited.
    pub end: u64,
}

/// The complete trace of one SM run.
#[derive(Clone, Debug, Default)]
pub struct SmTraceData {
    /// Sampling interval the timeline was recorded at.
    pub interval: u64,
    /// Cumulative samples, in cycle order; the last entry is the
    /// end-of-run snapshot.
    pub samples: Vec<SmSample>,
    /// Completed CTA spans, in completion order.
    pub cta_spans: Vec<CtaSpan>,
    /// Periodic samples dropped because `sample_cap` was reached.
    pub dropped_samples: u64,
    /// CTA spans dropped because `span_cap` was reached.
    pub dropped_spans: u64,
}

/// Internal per-SM trace recorder.
#[derive(Debug)]
pub(crate) struct SmTracer {
    pub(crate) spec: TraceSpec,
    pub(crate) data: SmTraceData,
    /// cta_slot -> (cta index, launch cycle) for CTAs still resident.
    pub(crate) open_ctas: std::collections::HashMap<usize, (usize, u64)>,
}

impl SmTracer {
    pub(crate) fn new(spec: TraceSpec) -> SmTracer {
        assert!(spec.interval > 0, "trace interval must be non-zero");
        SmTracer {
            spec,
            data: SmTraceData {
                interval: spec.interval,
                ..SmTraceData::default()
            },
            open_ctas: std::collections::HashMap::new(),
        }
    }

    /// Records a periodic sample, honoring the cap.
    pub(crate) fn push_sample(&mut self, sample: SmSample) {
        if self.data.samples.len() >= self.spec.sample_cap {
            self.data.dropped_samples += 1;
        } else {
            self.data.samples.push(sample);
        }
    }

    /// Records the final end-of-run sample (exempt from the cap so the
    /// timeline always closes on the run totals). Replaces a periodic
    /// sample taken at the same cycle.
    pub(crate) fn push_final_sample(&mut self, sample: SmSample) {
        if self
            .data
            .samples
            .last()
            .is_some_and(|s| s.cycle == sample.cycle)
        {
            *self.data.samples.last_mut().expect("checked") = sample;
        } else {
            self.data.samples.push(sample);
        }
    }

    pub(crate) fn cta_begin(&mut self, cta_slot: usize, cta: usize, cycle: u64) {
        self.open_ctas.insert(cta_slot, (cta, cycle));
    }

    pub(crate) fn cta_end(&mut self, cta_slot: usize, cycle: u64) {
        let Some((cta, begin)) = self.open_ctas.remove(&cta_slot) else {
            return;
        };
        if self.data.cta_spans.len() >= self.spec.span_cap {
            self.data.dropped_spans += 1;
        } else {
            self.data.cta_spans.push(CtaSpan {
                cta: cta as u64,
                begin,
                end: cycle,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_cap_counts_drops_instead_of_truncating_silently() {
        let mut t = SmTracer::new(TraceSpec {
            interval: 16,
            span_cap: 2,
            sample_cap: 8,
        });
        for i in 0..5usize {
            t.cta_begin(0, i, i as u64 * 10);
            t.cta_end(0, i as u64 * 10 + 5);
        }
        assert_eq!(t.data.cta_spans.len(), 2);
        assert_eq!(t.data.dropped_spans, 3);
    }

    #[test]
    fn sample_cap_counts_drops_but_final_sample_always_lands() {
        let mut t = SmTracer::new(TraceSpec {
            interval: 1,
            span_cap: 8,
            sample_cap: 2,
        });
        for c in 1..=4u64 {
            t.push_sample(SmSample {
                cycle: c,
                ..SmSample::default()
            });
        }
        assert_eq!(t.data.samples.len(), 2);
        assert_eq!(t.data.dropped_samples, 2);
        t.push_final_sample(SmSample {
            cycle: 99,
            issued_other: 7,
            ..SmSample::default()
        });
        assert_eq!(t.data.samples.len(), 3);
        assert_eq!(t.data.samples.last().unwrap().cycle, 99);
    }

    #[test]
    fn final_sample_replaces_same_cycle_periodic_sample() {
        let mut t = SmTracer::new(TraceSpec::default());
        t.push_sample(SmSample {
            cycle: 1024,
            issued_other: 1,
            ..SmSample::default()
        });
        t.push_final_sample(SmSample {
            cycle: 1024,
            issued_other: 2,
            ..SmSample::default()
        });
        assert_eq!(t.data.samples.len(), 1);
        assert_eq!(t.data.samples[0].issued_other, 2);
    }
}
