//! Run statistics reported by the SM model.

use duplo_core::{DetectStats, LhbStats};
use duplo_mem::{MemStats, ServiceLevel, SliceStat};

/// Where load row-segments were served from (the Fig. 11 breakdown).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ServiceCounts {
    /// Served by Duplo register renaming (LHB hit).
    pub lhb: u64,
    /// L1 hits.
    pub l1: u64,
    /// L2 hits (including MSHR merges riding an L2-backed fill; merges on
    /// DRAM-backed fills count under `dram`).
    pub l2: u64,
    /// DRAM fills.
    pub dram: u64,
    /// Shared-memory accesses (outside the L1/L2/DRAM path).
    pub shared: u64,
}

impl ServiceCounts {
    /// Total global-memory load segments (excludes shared).
    pub fn total_global(&self) -> u64 {
        self.lhb + self.l1 + self.l2 + self.dram
    }

    /// Fraction of global load segments served by `level`.
    pub fn fraction(&self, level: ServiceLevel) -> f64 {
        let total = self.total_global();
        if total == 0 {
            return 0.0;
        }
        let n = match level {
            ServiceLevel::Lhb => self.lhb,
            ServiceLevel::L1 => self.l1,
            ServiceLevel::L2 => self.l2,
            ServiceLevel::Dram => self.dram,
        };
        n as f64 / total as f64
    }

    pub(crate) fn count(&mut self, level: ServiceLevel) {
        match level {
            ServiceLevel::Lhb => self.lhb += 1,
            ServiceLevel::L1 => self.l1 += 1,
            ServiceLevel::L2 => self.l2 += 1,
            ServiceLevel::Dram => self.dram += 1,
        }
    }
}

/// Why scheduler slots went unissued.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct StallBreakdown {
    /// No resident warp had work (tail or launch gaps).
    pub empty: u64,
    /// All candidate warps blocked on operand dependencies.
    pub data_dependency: u64,
    /// A memory instruction was ready but the LDST queue was full.
    pub ldst_full: u64,
    /// A tensor-core instruction was ready but no tensor core was free.
    pub tensor_busy: u64,
    /// Warps waiting at barriers.
    pub barrier: u64,
}

impl StallBreakdown {
    /// Cycles in which the scheduler issued nothing for memory reasons
    /// (the paper's "LDST stall cycles" metric).
    pub fn ldst_stalls(&self) -> u64 {
        self.ldst_full
    }

    /// Total unissued scheduler slots across all categories. Each
    /// scheduler slot per cycle either issues exactly one instruction or
    /// lands in exactly one category, so for every run
    /// `issued_total + stalls.total() == cycles * schedulers`.
    pub fn total(&self) -> u64 {
        self.empty + self.data_dependency + self.ldst_full + self.tensor_busy + self.barrier
    }
}

/// Complete statistics of one SM run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SmStats {
    /// Total cycles to drain all assigned CTAs.
    pub cycles: u64,
    /// Instructions issued, by class.
    pub issued_mma: u64,
    /// Tensor-core load instructions issued (fragment granularity).
    pub issued_tensor_loads: u64,
    /// Tensor-core load row-segments processed (the paper's
    /// "tensor-core-load instruction" granularity).
    pub row_loads: u64,
    /// Row-segments eliminated via LHB renaming.
    pub eliminated_loads: u64,
    /// Other instructions issued (ALU, scalar mem, barriers).
    pub issued_other: u64,
    /// Service-level breakdown of load row-segments.
    pub services: ServiceCounts,
    /// Extra L1 accesses caused by octet double-loading (energy-relevant).
    pub octet_dup_l1: u64,
    /// Per-scheduler stall breakdown, summed.
    pub stalls: StallBreakdown,
    /// Cycles the LDST pipes spent blocked (MSHR full / RF pressure).
    pub ldst_pipe_stalls: u64,
    /// Peak physical register rows in use.
    pub rf_peak_rows: u32,
    /// Physical register rows still allocated after the end-of-run retire
    /// drain — exactly 0 unless a reference-count leak occurred.
    pub rf_final_rows: u32,
    /// Detection-unit stats (zeroed for baseline runs).
    pub detect: DetectStats,
    /// LHB stats (zeroed for baseline runs).
    pub lhb: LhbStats,
    /// Memory hierarchy counters.
    pub mem: MemStats,
    /// Per-L2-slice counters (empty when the flat memory side is in use).
    pub slices: Vec<SliceStat>,
    /// Sampled (filled_addr, renamed_addr) pairs for functional
    /// value-equality validation.
    pub rename_pairs: Vec<(u64, u64)>,
    /// CTAs executed.
    pub ctas_run: u64,
}

impl SmStats {
    /// Fraction of tensor-core load row-segments eliminated (the ~76%
    /// oracle number in §V-B).
    pub fn elimination_rate(&self) -> f64 {
        if self.row_loads == 0 {
            0.0
        } else {
            self.eliminated_loads as f64 / self.row_loads as f64
        }
    }

    /// Total instructions issued across all classes. Together with
    /// [`StallBreakdown::total`] this accounts for every scheduler slot:
    /// `issued_total + stalls.total() == cycles * schedulers`.
    pub fn issued_total(&self) -> u64 {
        self.issued_mma + self.issued_tensor_loads + self.issued_other
    }
}
