//! Load-store unit: per-scheduler queues processing one 32-byte row-sector
//! per cycle, with the Duplo detection unit probed on every tensor-core
//! load row (paper Fig. 7/8).

use duplo_core::{LoadToken, PhysReg};
use duplo_isa::{ArchReg, Space};
use std::collections::VecDeque;

/// Kind of memory macro-instruction in flight.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MemKind {
    /// `wmma.load` (eligible for Duplo).
    TensorLoad,
    /// `wmma.store`.
    TensorStore,
    /// Scalar/vector load.
    ScalarLoad,
    /// Scalar/vector store.
    ScalarStore,
}

/// One memory macro-instruction being processed row-by-row.
#[derive(Clone, Debug)]
pub struct Inflight {
    /// Issuing warp slot.
    pub warp: usize,
    /// Kind.
    pub kind: MemKind,
    /// Destination register (loads).
    pub dst: Option<ArchReg>,
    /// Base byte address.
    pub addr: u64,
    /// Number of row-sectors.
    pub rows: u8,
    /// Bytes per row-sector.
    pub seg_bytes: u16,
    /// Stride between row-sectors.
    pub row_stride: u64,
    /// Address space.
    pub space: Space,
    /// Next row to process.
    pub next_row: u8,
    /// Latest completion cycle across processed rows.
    pub ready: u64,
    /// Physical rows bound by this load (misses allocate, hits reuse).
    pub pregs: Vec<PhysReg>,
    /// Load tokens (one per workspace row probed) for retirement.
    pub tokens: Vec<LoadToken>,
}

impl Inflight {
    /// Address of row `i`.
    pub fn row_addr(&self, i: u8) -> u64 {
        self.addr + u64::from(i) * self.row_stride
    }

    /// True when every row has been processed.
    pub fn complete(&self) -> bool {
        self.next_row >= self.rows
    }
}

/// A per-scheduler LDST pipe: bounded in-order queue, head processed one
/// row per cycle.
#[derive(Clone, Debug)]
pub struct LdstUnit {
    queue: VecDeque<Inflight>,
    capacity: usize,
}

impl LdstUnit {
    /// Creates an empty unit with the given queue depth.
    pub fn new(capacity: usize) -> LdstUnit {
        LdstUnit {
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Whether a new macro-instruction can be accepted this cycle.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Enqueues a macro-instruction.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers must check
    /// [`LdstUnit::can_accept`]).
    pub fn push(&mut self, inflight: Inflight) {
        assert!(self.can_accept(), "LDST queue overflow");
        self.queue.push_back(inflight);
    }

    /// The instruction at the head of the pipe.
    pub fn head_mut(&mut self) -> Option<&mut Inflight> {
        self.queue.front_mut()
    }

    /// Read-only view of the head (the wakeup wheel's stall probe).
    pub fn head(&self) -> Option<&Inflight> {
        self.queue.front()
    }

    /// Removes and returns the completed head.
    pub fn pop(&mut self) -> Option<Inflight> {
        self.queue.pop_front()
    }

    /// Whether the pipe has work.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Instructions currently queued.
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inflight(rows: u8) -> Inflight {
        Inflight {
            warp: 0,
            kind: MemKind::TensorLoad,
            dst: Some(ArchReg(1)),
            addr: 0x1000,
            rows,
            seg_bytes: 32,
            row_stride: 0x100,
            space: Space::Global,
            next_row: 0,
            ready: 0,
            pregs: Vec::new(),
            tokens: Vec::new(),
        }
    }

    #[test]
    fn row_addresses_follow_stride() {
        let i = inflight(16);
        assert_eq!(i.row_addr(0), 0x1000);
        assert_eq!(i.row_addr(3), 0x1300);
        assert!(!i.complete());
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut u = LdstUnit::new(2);
        assert!(u.can_accept());
        u.push(inflight(1));
        u.push(inflight(1));
        assert!(!u.can_accept());
        u.pop();
        assert!(u.can_accept());
        assert_eq!(u.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut u = LdstUnit::new(1);
        u.push(inflight(1));
        u.push(inflight(1));
    }
}
