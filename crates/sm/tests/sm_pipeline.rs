//! End-to-end tests of the SM pipeline: scheduling, barriers, memory
//! behaviour, and the Duplo detection path.

use duplo_core::LhbConfig;
use duplo_isa::{ArchReg, CtaTrace, Kernel, Op, Space, WarpTrace, WorkspaceDesc};
use duplo_sm::{SchedulerPolicy, SmConfig, run_kernel};

/// A kernel over explicit CTA traces.
struct TestKernel {
    ctas: Vec<CtaTrace>,
    shared: u32,
    workspace: Option<WorkspaceDesc>,
}

impl Kernel for TestKernel {
    fn name(&self) -> &str {
        "test"
    }
    fn num_ctas(&self) -> usize {
        self.ctas.len()
    }
    fn cta(&self, idx: usize) -> CtaTrace {
        self.ctas[idx].clone()
    }
    fn shared_mem_per_cta(&self) -> u32 {
        self.shared
    }
    fn regs_per_warp(&self) -> u32 {
        16
    }
    fn workspace(&self) -> Option<WorkspaceDesc> {
        self.workspace
    }
}

fn config() -> SmConfig {
    SmConfig::titan_v(80)
}

/// A workspace descriptor for a 16-channel 3x3 unit-stride conv on a
/// 16x16 input: `fw*C = 48` elements, so 16-element segments never cross
/// filter-row boundaries.
fn ws_desc(base: u64) -> WorkspaceDesc {
    let out = 16u32; // pad 1 keeps dims
    let row_len = 3 * 3 * 16u64; // 144 elements
    let rows = u64::from(out) * u64::from(out);
    WorkspaceDesc {
        base,
        bytes: rows * row_len * 2,
        elem_bytes: 2,
        row_stride_elems: 144,
        input_w: 16,
        channels: 16,
        fw: 3,
        fh: 3,
        out_w: out,
        out_h: out,
        stride: 1,
        pad: 1,
        batch: 1,
    }
}

fn frag_load(dst: u16, addr: u64, row_stride: u64) -> Op {
    Op::WmmaLoad {
        dst: ArchReg(dst),
        addr,
        rows: 16,
        seg_bytes: 32,
        row_stride,
        space: Space::Global,
    }
}

#[test]
fn empty_kernel_finishes_immediately() {
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace {
                ops: vec![Op::Exit],
            }],
        }],
        shared: 0,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0], config());
    assert!(stats.cycles < 10);
    assert_eq!(stats.ctas_run, 1);
}

#[test]
fn alu_chain_respects_latencies() {
    // 10 dependent ALU ops of latency 4 take at least 40 cycles.
    let mut ops = Vec::new();
    for _ in 0..10 {
        ops.push(Op::Alu {
            dst: Some(ArchReg(0)),
            latency: 4,
        });
    }
    ops.push(Op::Exit);
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace { ops }],
        }],
        shared: 0,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0], config());
    assert!(stats.cycles >= 40, "got {}", stats.cycles);
    assert!(stats.cycles < 60, "got {}", stats.cycles);
}

#[test]
fn barrier_synchronizes_cta() {
    // Warp 0 does long ALU work before the barrier; warp 1 reaches it
    // immediately. Both must pass together.
    let slow = WarpTrace {
        ops: vec![
            Op::Alu {
                dst: Some(ArchReg(0)),
                latency: 100,
            },
            Op::Alu {
                dst: Some(ArchReg(0)),
                latency: 100,
            },
            Op::Bar,
            Op::Exit,
        ],
    };
    let fast = WarpTrace {
        ops: vec![Op::Bar, Op::Exit],
    };
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![slow, fast],
        }],
        shared: 0,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0], config());
    // Warp 1 must wait for warp 0's ~200 cycles of ALU latency.
    assert!(
        stats.cycles >= 200,
        "barrier released early: {}",
        stats.cycles
    );
    assert_eq!(stats.ctas_run, 1);
}

#[test]
fn baseline_load_traverses_hierarchy() {
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace {
                ops: vec![frag_load(0, 0x10_0000, 288), Op::Exit],
            }],
        }],
        shared: 0,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0], config());
    assert_eq!(stats.issued_tensor_loads, 1);
    assert_eq!(stats.row_loads, 16);
    assert!(stats.services.dram > 0, "cold rows must reach DRAM");
    assert_eq!(stats.services.lhb, 0);
    assert!(stats.mem.dram_bytes > 0);
}

#[test]
fn duplicate_fragment_hits_lhb_and_saves_traffic() {
    let base = 0x10_0000u64;
    let desc = ws_desc(base);
    let row_stride = desc.row_len() * 2; // one workspace row apart
    // Two loads of the same fragment to different registers: the second
    // must be fully eliminated.
    let ops = vec![
        frag_load(0, base, row_stride),
        frag_load(1, base, row_stride),
        Op::Exit,
    ];
    let mk = |lhb: Option<LhbConfig>| {
        let k = TestKernel {
            ctas: vec![CtaTrace {
                warps: vec![WarpTrace { ops: ops.clone() }],
            }],
            shared: 0,
            workspace: Some(desc),
        };
        let mut cfg = config();
        cfg.lhb = lhb;
        cfg.rename_log_cap = 100;
        run_kernel(&k, &[0], cfg)
    };

    let baseline = mk(None);
    let duplo = mk(Some(LhbConfig::paper_default()));

    assert_eq!(duplo.eliminated_loads, 16, "second fragment fully renamed");
    assert_eq!(duplo.services.lhb, 16);
    assert_eq!(baseline.services.lhb, 0);
    // Same-address duplicates hit the L1 in the baseline, so DRAM traffic
    // ties here; the savings appear in L1/L2 accesses and latency.
    assert!(duplo.mem.dram_bytes <= baseline.mem.dram_bytes);
    assert!(
        duplo.mem.l1_hits + duplo.mem.l1_misses < baseline.mem.l1_hits + baseline.mem.l1_misses,
        "duplo must touch the L1 less: {:?} vs {:?}",
        duplo.mem,
        baseline.mem
    );
    assert!(duplo.cycles <= baseline.cycles);
    assert_eq!(duplo.lhb.hits, 16);
    // The rename log pairs identical addresses (same fragment loaded twice).
    assert!(!duplo.rename_pairs.is_empty());
    for (a, b) in &duplo.rename_pairs {
        assert_eq!(a, b);
    }
}

#[test]
fn duplicate_rows_at_different_addresses_hit() {
    // Inter-patch duplication: workspace rows `flat` and `flat + out_w` share
    // element IDs at k-offsets differing by fw*C (paper Fig. 5/6). Build two
    // fragment loads whose 16 rows pairwise carry equal element IDs.
    let base = 0x10_0000u64;
    let desc = ws_desc(base);
    let row_len_b = desc.row_len() * 2; // 288 bytes
    // Fragment A: workspace rows 16..31 (one output row = 16 rows here),
    // k-offset = fw*C elements = 96 bytes into the row (filter row r=1).
    let a_addr = base + 16 * row_len_b + 96;
    // Fragment B: workspace rows 32..47 (next output row), r=0 (k-offset 0).
    let b_addr = base + 32 * row_len_b;
    let ops = vec![
        frag_load(0, a_addr, row_len_b),
        frag_load(1, b_addr, row_len_b),
        Op::Exit,
    ];
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace { ops }],
        }],
        shared: 0,
        workspace: Some(desc),
    };
    let mut cfg = config();
    cfg.lhb = Some(LhbConfig::oracle());
    let stats = run_kernel(&k, &[0], cfg);
    assert_eq!(
        stats.eliminated_loads, 16,
        "all 16 rows of the second fragment are duplicates (got {} of 32 rows, lhb hits {})",
        stats.eliminated_loads, stats.lhb.hits
    );
}

#[test]
fn no_workspace_descriptor_means_baseline_behaviour() {
    let ops = vec![
        frag_load(0, 0x10_0000, 288),
        frag_load(1, 0x10_0000, 288),
        Op::Exit,
    ];
    let mk = |ws: Option<WorkspaceDesc>, lhb: Option<LhbConfig>| {
        let k = TestKernel {
            ctas: vec![CtaTrace {
                warps: vec![WarpTrace { ops: ops.clone() }],
            }],
            shared: 0,
            workspace: ws,
        };
        let mut cfg = config();
        cfg.lhb = lhb;
        run_kernel(&k, &[0], cfg)
    };
    // Duplo enabled but the kernel has no workspace: detection unit stays
    // power-gated; behaviour identical to baseline.
    let base = mk(None, None);
    let gated = mk(None, Some(LhbConfig::paper_default()));
    assert_eq!(base.cycles, gated.cycles);
    assert_eq!(base.mem.dram_bytes, gated.mem.dram_bytes);
    assert_eq!(gated.eliminated_loads, 0);
}

#[test]
fn runs_are_deterministic() {
    let base = 0x10_0000u64;
    let desc = ws_desc(base);
    let mut warps = Vec::new();
    for w in 0..8u64 {
        let mut ops = Vec::new();
        for i in 0..6u64 {
            ops.push(frag_load(
                i as u16,
                base + (w * 7 + i * 3) % 32 * desc.row_len() * 2,
                desc.row_len() * 2,
            ));
        }
        ops.push(Op::Exit);
        warps.push(WarpTrace { ops });
    }
    let k = TestKernel {
        ctas: vec![CtaTrace { warps }],
        shared: 0,
        workspace: Some(desc),
    };
    let mut cfg = config();
    cfg.lhb = Some(LhbConfig::paper_default());
    let a = run_kernel(&k, &[0], cfg.clone());
    let b = run_kernel(&k, &[0], cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.eliminated_loads, b.eliminated_loads);
    assert_eq!(a.mem.dram_bytes, b.mem.dram_bytes);
    assert_eq!(a.lhb.hits, b.lhb.hits);
}

#[test]
fn lrr_policy_also_completes() {
    let mut cfg = config();
    cfg.policy = SchedulerPolicy::Lrr;
    let warps = (0..4)
        .map(|_| WarpTrace {
            ops: vec![frag_load(0, 0x10_0000, 288), Op::Exit],
        })
        .collect();
    let k = TestKernel {
        ctas: vec![CtaTrace { warps }],
        shared: 0,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0], cfg);
    assert_eq!(stats.issued_tensor_loads, 4);
}

#[test]
fn shared_memory_limits_concurrent_ctas() {
    // Each CTA claims 48 KB of a 96 KB SM: at most 2 resident at once.
    // 4 CTAs of pure ALU latency 100 serialize into >= 2 waves.
    let cta = CtaTrace {
        warps: vec![WarpTrace {
            ops: vec![
                Op::Alu {
                    dst: Some(ArchReg(0)),
                    latency: 100,
                },
                Op::Alu {
                    dst: Some(ArchReg(0)),
                    latency: 100,
                },
                Op::Exit,
            ],
        }],
    };
    let k = TestKernel {
        ctas: vec![cta.clone(), cta.clone(), cta.clone(), cta],
        shared: 48 * 1024,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0, 1, 2, 3], config());
    assert!(
        stats.cycles >= 400,
        "4 CTAs with 2-resident limit must take 2+ waves: {}",
        stats.cycles
    );
    assert_eq!(stats.ctas_run, 4);
}

#[test]
fn mma_throughput_bounded_by_tensor_cores() {
    // 64 independent MMAs per warp on 1 warp: 2 TCs per scheduler, ii=8:
    // at best one MMA per 8 cycles per TC, but a single warp issues 1/cycle;
    // with 2 TCs the warp sustains 2 MMAs per 8 cycles.
    let mut ops = Vec::new();
    for i in 0..64u16 {
        ops.push(Op::WmmaMma {
            d: ArchReg(8 + i % 8),
            a: ArchReg(0),
            b: ArchReg(1),
            c: ArchReg(8 + i % 8),
        });
    }
    ops.push(Op::Exit);
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace { ops }],
        }],
        shared: 0,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0], config());
    assert_eq!(stats.issued_mma, 64);
    // 64 MMAs / 2 TCs * 8 cycles = 256 cycles lower bound.
    assert!(stats.cycles >= 256, "got {}", stats.cycles);
}

#[test]
fn store_does_not_block_and_counts_traffic() {
    let ops = vec![
        Op::WmmaStore {
            src: ArchReg(0),
            addr: 0x40_0000,
            rows: 16,
            seg_bytes: 32,
            row_stride: 512,
            space: Space::Global,
        },
        Op::Exit,
    ];
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace { ops }],
        }],
        shared: 0,
        workspace: None,
    };
    let stats = run_kernel(&k, &[0], config());
    assert_eq!(stats.mem.stores, 16);
    assert_eq!(stats.mem.store_bytes, 512);
    assert!(stats.cycles < 100, "stores must not wait for DRAM");
}
