//! Randomized SM pipeline tests: arbitrary well-formed kernels must run to
//! completion (no deadlock), and the statistics must stay self-consistent.
//!
//! Runs on the hermetic `duplo_testkit::prop` runner; set `DUPLO_TEST_SEED`
//! to reproduce a failure (the panic message prints the seed to use).

use duplo_core::LhbConfig;
use duplo_isa::{ArchReg, CtaTrace, Kernel, Op, Space, WarpTrace, WorkspaceDesc};
use duplo_sm::{SmConfig, run_kernel};
use duplo_testkit::prop::check;
use duplo_testkit::{Rng, require_eq};

struct FuzzKernel {
    ctas: Vec<CtaTrace>,
    workspace: Option<WorkspaceDesc>,
}

impl Kernel for FuzzKernel {
    fn name(&self) -> &str {
        "fuzz"
    }
    fn num_ctas(&self) -> usize {
        self.ctas.len()
    }
    fn cta(&self, idx: usize) -> CtaTrace {
        self.ctas[idx].clone()
    }
    fn shared_mem_per_cta(&self) -> u32 {
        1024
    }
    fn regs_per_warp(&self) -> u32 {
        16
    }
    fn workspace(&self) -> Option<WorkspaceDesc> {
        self.workspace
    }
}

fn ws_desc() -> WorkspaceDesc {
    WorkspaceDesc {
        base: 0x10_0000,
        bytes: 256 * 144 * 2,
        elem_bytes: 2,
        row_stride_elems: 144,
        input_w: 16,
        channels: 16,
        fw: 3,
        fh: 3,
        out_w: 16,
        out_h: 16,
        stride: 1,
        pad: 1,
        batch: 1,
    }
}

/// Generates a well-formed warp: random mix of ALU, loads, MMAs and a
/// final Exit; barriers are emitted CTA-uniformly (same count per warp) to
/// avoid ill-formed programs.
fn arb_warp(ops_seed: &[(u8, u8)], barriers: usize) -> WarpTrace {
    let mut ops = Vec::new();
    let bar_every = if barriers > 0 {
        (ops_seed.len() / (barriers + 1)).max(1)
    } else {
        usize::MAX
    };
    for (i, (kind, arg)) in ops_seed.iter().enumerate() {
        match kind % 4 {
            0 => ops.push(Op::Alu {
                dst: Some(ArchReg(u16::from(arg % 4))),
                latency: 2 + arg % 6,
            }),
            1 => ops.push(Op::WmmaLoad {
                dst: ArchReg(u16::from(arg % 4)),
                addr: 0x10_0000 + u64::from(*arg) * 288,
                rows: 4 + (arg % 12),
                seg_bytes: 32,
                row_stride: 288,
                space: if arg % 5 == 0 {
                    Space::Shared
                } else {
                    Space::Global
                },
            }),
            2 => ops.push(Op::WmmaMma {
                d: ArchReg(8 + u16::from(arg % 4)),
                a: ArchReg(u16::from(arg % 4)),
                b: ArchReg(u16::from((arg / 4) % 4)),
                c: ArchReg(8 + u16::from(arg % 4)),
            }),
            _ => ops.push(Op::St {
                src: ArchReg(8),
                addr: 0x40_0000 + u64::from(*arg) * 64,
                bytes: 64,
                space: Space::Global,
            }),
        }
        if i % bar_every == bar_every - 1 {
            ops.push(Op::Bar);
        }
    }
    // Close any trailing barrier imbalance by construction: all warps in a
    // CTA get the same ops_seed length and bar_every, so counts match.
    ops.push(Op::Exit);
    WarpTrace { ops }
}

#[derive(Debug)]
struct Case {
    ops_seed: Vec<(u8, u8)>,
    warps: usize,
    barriers: usize,
    duplo: bool,
}

fn arb_case(rng: &mut Rng) -> Option<Case> {
    let len = rng.gen_range(1usize..40);
    let ops_seed = (0..len)
        .map(|_| (rng.gen_range(0u8..4), rng.gen_range(0u8..=255)))
        .collect();
    Some(Case {
        ops_seed,
        warps: rng.gen_range(1usize..5),
        barriers: rng.gen_range(0usize..3),
        duplo: rng.gen_bool(0.5),
    })
}

/// Any generated kernel completes, with and without Duplo, and the
/// statistics add up.
#[test]
fn random_kernels_complete_and_stats_are_consistent() {
    check(
        "random_kernels_complete_and_stats_are_consistent",
        24,
        arb_case,
        |case| {
            let cta = CtaTrace {
                warps: (0..case.warps)
                    .map(|_| arb_warp(&case.ops_seed, case.barriers))
                    .collect(),
            };
            let kernel = FuzzKernel {
                ctas: vec![cta.clone(), cta],
                workspace: Some(ws_desc()),
            };
            let mut cfg = SmConfig::titan_v(80);
            if case.duplo {
                cfg.lhb = Some(LhbConfig::direct_mapped(64));
            }
            let stats = run_kernel(&kernel, &[0, 1], cfg);
            require_eq!(stats.ctas_run, 2);
            // Every eliminated load was served by the LHB.
            require_eq!(stats.eliminated_loads, stats.services.lhb);
            // Row loads are global tensor rows: they equal the global service
            // events minus scalar loads (this fuzz issues no scalar loads).
            require_eq!(
                stats.services.total_global(),
                stats.row_loads,
                "every tensor row must be attributed to exactly one level"
            );
            if !case.duplo {
                require_eq!(stats.services.lhb, 0);
                require_eq!(stats.lhb.hits + stats.lhb.misses, 0);
            }
            // Determinism.
            let mut cfg2 = SmConfig::titan_v(80);
            if case.duplo {
                cfg2.lhb = Some(LhbConfig::direct_mapped(64));
            }
            let kernel2 = FuzzKernel {
                ctas: (0..2).map(|i| kernel.cta(i)).collect(),
                workspace: Some(ws_desc()),
            };
            let stats2 = run_kernel(&kernel2, &[0, 1], cfg2);
            require_eq!(stats.cycles, stats2.cycles);
            Ok(())
        },
    );
}
