//! Register-file drain regression tests (the shared-path RF-row leak).
//!
//! `process_tensor_row_shared` used to discard the row it re-allocated
//! after `force_retire` under register-file pressure and return `Stall`
//! anyway, leaking one physical row (refcount 1, never released) per
//! pressure event. These tests drive kernels to completion under an
//! artificially small `regfile_rows` so the pressure path is guaranteed to
//! run, then assert `rf_final_rows == 0`: after the end-of-run retire
//! drain every row must be free, so any residue is a refcount leak.

use duplo_core::LhbConfig;
use duplo_isa::{ArchReg, CtaTrace, Kernel, Op, Space, WarpTrace, WorkspaceDesc};
use duplo_sm::{SmConfig, run_kernel, run_kernel_reference};
use duplo_testkit::prop::check;
use duplo_testkit::{Rng, require_eq};

struct FixedKernel {
    ctas: Vec<CtaTrace>,
    workspace: Option<WorkspaceDesc>,
}

impl Kernel for FixedKernel {
    fn name(&self) -> &str {
        "rf_drain"
    }
    fn num_ctas(&self) -> usize {
        self.ctas.len()
    }
    fn cta(&self, idx: usize) -> CtaTrace {
        self.ctas[idx].clone()
    }
    fn shared_mem_per_cta(&self) -> u32 {
        1024
    }
    fn regs_per_warp(&self) -> u32 {
        16
    }
    fn workspace(&self) -> Option<WorkspaceDesc> {
        self.workspace
    }
}

fn ws_desc() -> WorkspaceDesc {
    WorkspaceDesc {
        base: 0x10_0000,
        bytes: 256 * 144 * 2,
        elem_bytes: 2,
        row_stride_elems: 144,
        input_w: 16,
        channels: 16,
        fw: 3,
        fh: 3,
        out_w: 16,
        out_h: 16,
        stride: 1,
        pad: 1,
        batch: 1,
    }
}

/// One warp issuing `loads` 16-row tensor loads at unique, non-overlapping
/// addresses (all detection misses under the oracle LHB, so every row pins
/// a fresh physical register until commit-time retirement), alternating
/// between two destination registers so at most two bindings stay live.
fn pressure_kernel(loads: u64, space: Space) -> FixedKernel {
    let mut ops = Vec::new();
    for i in 0..loads {
        ops.push(Op::WmmaLoad {
            dst: ArchReg((i % 2) as u16),
            addr: 0x10_0000 + i * 512,
            rows: 16,
            seg_bytes: 32,
            row_stride: 32,
            space,
        });
    }
    ops.push(Op::Exit);
    FixedKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace { ops }],
        }],
        workspace: Some(ws_desc()),
    }
}

/// 64 physical rows: 640 row allocations against a 64-row file with the
/// 4096-cycle commit delay guarantees the file fills and the
/// `force_retire` pressure path runs. Worst-case simultaneous demand (two
/// 16-row bindings + one 16-row load in flight = 48 rows) stays under the
/// cap, so the kernel cannot deadlock.
fn tiny_rf(space_shared: bool) -> SmConfig {
    let mut cfg = SmConfig::titan_v(80);
    cfg.regfile_bytes = 64 * 32;
    cfg.lhb = Some(LhbConfig::oracle());
    cfg.lhb_on_shared = space_shared;
    cfg
}

/// The headline leak: shared-memory Duplo path under RF pressure. With the
/// old code every pressure event leaked one row and `rf_final_rows` ended
/// well above zero; fixed, the re-allocated row is used and everything
/// drains.
#[test]
fn shared_path_pressure_drains_to_zero() {
    let stats = run_kernel(&pressure_kernel(40, Space::Shared), &[0], tiny_rf(true));
    assert_eq!(
        stats.rf_peak_rows, 64,
        "test must exercise the pressure path (RF full at least once)"
    );
    assert_eq!(
        stats.rf_final_rows, 0,
        "physical rows leaked on the shared Duplo path"
    );
}

/// The global path (which always handled pressure correctly) drains too —
/// the fix mirrors this behavior, so the two paths must agree.
#[test]
fn global_path_pressure_drains_to_zero() {
    let stats = run_kernel(&pressure_kernel(40, Space::Global), &[0], tiny_rf(false));
    assert_eq!(stats.rf_peak_rows, 64, "pressure path must run");
    assert_eq!(
        stats.rf_final_rows, 0,
        "physical rows leaked on the global path"
    );
}

/// The reference tick-by-tick loop sees the identical pressure behavior:
/// the fix is in the row processing, not the loop, so both loops agree on
/// `rf_peak_rows`/`rf_final_rows` exactly.
#[test]
fn pressure_path_identical_under_reference_loop() {
    let event = run_kernel(&pressure_kernel(40, Space::Shared), &[0], tiny_rf(true));
    let reference = run_kernel_reference(&pressure_kernel(40, Space::Shared), &[0], tiny_rf(true));
    assert_eq!(event, reference);
}

/// Without pressure (the full 8192-row Titan V file) the same kernel never
/// fills the RF — the fix is pressure-path-only, so the unpressured run
/// must stay below the cap and still drain to zero.
#[test]
fn no_pressure_run_never_fills_rf_and_drains() {
    let mut cfg = SmConfig::titan_v(80);
    cfg.lhb = Some(LhbConfig::oracle());
    cfg.lhb_on_shared = true;
    let stats = run_kernel(&pressure_kernel(40, Space::Shared), &[0], cfg.clone());
    assert!(
        stats.rf_peak_rows < cfg.regfile_rows(),
        "8192-row file must never fill on this kernel (peak {})",
        stats.rf_peak_rows
    );
    assert_eq!(stats.rf_final_rows, 0);
}

/// Property: random mixed kernels (hits, misses, evictions, barriers,
/// stores) under a small register file always drain to exactly zero rows.
#[test]
fn random_kernels_under_small_rf_drain_to_zero() {
    #[derive(Debug)]
    struct Case {
        seed: Vec<(u8, u8)>,
        warps: usize,
        shared: bool,
    }
    fn arb(rng: &mut Rng) -> Option<Case> {
        let len = rng.gen_range(4usize..48);
        Some(Case {
            seed: (0..len)
                .map(|_| (rng.gen_range(0u8..4), rng.gen_range(0u8..=255)))
                .collect(),
            warps: rng.gen_range(1usize..4),
            shared: rng.gen_bool(0.5),
        })
    }
    fn build(case: &Case) -> FixedKernel {
        let mut warps = Vec::new();
        for w in 0..case.warps {
            let mut ops = Vec::new();
            for (i, (kind, arg)) in case.seed.iter().enumerate() {
                match kind % 4 {
                    0 | 1 => ops.push(Op::WmmaLoad {
                        dst: ArchReg(u16::from(arg % 4)),
                        addr: 0x10_0000 + u64::from(*arg) * 288 + (w as u64) * 64,
                        rows: 4 + (arg % 12),
                        seg_bytes: 32,
                        row_stride: 288,
                        space: if case.shared && arg % 2 == 0 {
                            Space::Shared
                        } else {
                            Space::Global
                        },
                    }),
                    2 => ops.push(Op::WmmaMma {
                        d: ArchReg(8),
                        a: ArchReg(u16::from(arg % 4)),
                        b: ArchReg(u16::from((arg / 4) % 4)),
                        c: ArchReg(8),
                    }),
                    _ => ops.push(Op::St {
                        src: ArchReg(8),
                        addr: 0x10_0000 + u64::from(*arg) * 288,
                        bytes: 64,
                        space: Space::Global,
                    }),
                }
                if i % 9 == 8 {
                    ops.push(Op::Bar);
                }
            }
            ops.push(Op::Exit);
            warps.push(WarpTrace { ops });
        }
        FixedKernel {
            ctas: vec![CtaTrace { warps }],
            workspace: Some(ws_desc()),
        }
    }
    check(
        "random_kernels_under_small_rf_drain_to_zero",
        32,
        arb,
        |case| {
            // 384 rows: small enough that load bursts hit the pressure path,
            // large enough that worst-case binding demand (3 warps x 4 regs x
            // 16 rows = 192) plus in-flight rows cannot deadlock.
            let mut cfg = SmConfig::titan_v(80);
            cfg.regfile_bytes = 384 * 32;
            cfg.lhb = Some(LhbConfig::direct_mapped(64));
            cfg.lhb_on_shared = case.shared;
            let stats = run_kernel(&build(case), &[0], cfg);
            require_eq!(stats.rf_final_rows, 0, "rows leaked: {stats:#?}");
            Ok(())
        },
    );
}
