//! Directed tests of the scheduler-slot accounting identity behind the
//! exported stall-attribution metrics: every scheduler slot of every cycle
//! either issues exactly one instruction or lands in exactly one
//! [`StallBreakdown`] category, so
//!
//! ```text
//! issued_total + stalls.total() == cycles * schedulers
//! ```
//!
//! must hold exactly for any kernel, baseline or Duplo.

use duplo_core::LhbConfig;
use duplo_isa::{ArchReg, CtaTrace, Kernel, Op, Space, WarpTrace, WorkspaceDesc};
use duplo_sm::{SmConfig, SmStats, run_kernel};

struct TestKernel {
    ctas: Vec<CtaTrace>,
    shared: u32,
    workspace: Option<WorkspaceDesc>,
}

impl Kernel for TestKernel {
    fn name(&self) -> &str {
        "stall-attr"
    }
    fn num_ctas(&self) -> usize {
        self.ctas.len()
    }
    fn cta(&self, idx: usize) -> CtaTrace {
        self.ctas[idx].clone()
    }
    fn shared_mem_per_cta(&self) -> u32 {
        self.shared
    }
    fn regs_per_warp(&self) -> u32 {
        16
    }
    fn workspace(&self) -> Option<WorkspaceDesc> {
        self.workspace
    }
}

fn config() -> SmConfig {
    SmConfig::titan_v(80)
}

/// Same workspace geometry as the pipeline tests: 16-channel 3x3 conv on
/// a 16x16 input, 144-element rows.
fn ws_desc(base: u64) -> WorkspaceDesc {
    let out = 16u32;
    let row_len = 3 * 3 * 16u64;
    let rows = u64::from(out) * u64::from(out);
    WorkspaceDesc {
        base,
        bytes: rows * row_len * 2,
        elem_bytes: 2,
        row_stride_elems: 144,
        input_w: 16,
        channels: 16,
        fw: 3,
        fh: 3,
        out_w: out,
        out_h: out,
        stride: 1,
        pad: 1,
        batch: 1,
    }
}

fn frag_load(dst: u16, addr: u64, row_stride: u64) -> Op {
    Op::WmmaLoad {
        dst: ArchReg(dst),
        addr,
        rows: 16,
        seg_bytes: 32,
        row_stride,
        space: Space::Global,
    }
}

/// Asserts the accounting identity and the per-pipe bound on a run.
fn assert_accounted(stats: &SmStats, schedulers: usize, label: &str) {
    let slots = stats.cycles * schedulers as u64;
    assert_eq!(
        stats.issued_total() + stats.stalls.total(),
        slots,
        "{label}: issued {} + stalls {:?} (total {}) must equal {} cycles x {} schedulers",
        stats.issued_total(),
        stats.stalls,
        stats.stalls.total(),
        stats.cycles,
        schedulers,
    );
    // One LDST pipe per scheduler, each ticking at most once per cycle.
    assert!(
        stats.ldst_pipe_stalls <= slots,
        "{label}: ldst_pipe_stalls {} exceeds pipe-cycle budget {slots}",
        stats.ldst_pipe_stalls,
    );
}

/// A mixed kernel (loads, MMAs, dependent ALU work, barriers) across
/// several warps: the identity must hold exactly, and the tail plus the
/// dependence chains must show up in their categories.
#[test]
fn scheduler_slots_are_fully_accounted() {
    let base = 0x10_0000u64;
    let desc = ws_desc(base);
    let row_stride = desc.row_len() * 2;
    let mut warps = Vec::new();
    for w in 0..6u64 {
        let mut ops = Vec::new();
        for i in 0..4u64 {
            ops.push(frag_load(
                i as u16,
                base + ((w * 5 + i * 3) % 32) * row_stride,
                row_stride,
            ));
        }
        // A dependent ALU chain keeps this warp unissuable for stretches.
        for _ in 0..4 {
            ops.push(Op::Alu {
                dst: Some(ArchReg(8)),
                latency: 20,
            });
        }
        ops.push(Op::WmmaMma {
            d: ArchReg(9),
            a: ArchReg(0),
            b: ArchReg(1),
            c: ArchReg(9),
        });
        ops.push(Op::Bar);
        ops.push(Op::Exit);
        warps.push(WarpTrace { ops });
    }
    let k = TestKernel {
        ctas: vec![CtaTrace { warps }],
        shared: 0,
        workspace: Some(desc),
    };

    let cfg = config();
    let schedulers = cfg.schedulers;
    let baseline = run_kernel(&k, &[0], cfg.clone());
    assert_accounted(&baseline, schedulers, "baseline");
    assert!(baseline.stalls.empty > 0, "tail cycles must count as empty");
    assert!(
        baseline.stalls.data_dependency > 0,
        "ALU chains must stall on operands"
    );
    assert!(baseline.stalls.barrier > 0, "barrier waits must be counted");

    let mut duplo_cfg = cfg;
    duplo_cfg.lhb = Some(LhbConfig::paper_default());
    let duplo = run_kernel(&k, &[0], duplo_cfg);
    assert_accounted(&duplo, schedulers, "duplo");
    assert!(duplo.eliminated_loads > 0, "workspace reuse must rename");
}

/// Back-to-back independent fragment loads from many warps overwhelm the
/// 8-entry LDST queues: the `ldst_full` category must fire, and the
/// identity must still balance to the cycle.
#[test]
fn ldst_queue_pressure_is_attributed() {
    let base = 0x10_0000u64;
    let mut warps = Vec::new();
    for w in 0..8u64 {
        let mut ops = Vec::new();
        for i in 0..12u64 {
            // Distinct cold addresses so every load occupies its queue slot
            // for a full memory round-trip.
            ops.push(frag_load(
                (i % 8) as u16,
                base + (w * 12 + i) * 0x2000,
                0x400,
            ));
        }
        ops.push(Op::Exit);
        warps.push(WarpTrace { ops });
    }
    let k = TestKernel {
        ctas: vec![CtaTrace { warps }],
        shared: 0,
        workspace: None,
    };
    let cfg = config();
    let schedulers = cfg.schedulers;
    let stats = run_kernel(&k, &[0], cfg);
    assert_accounted(&stats, schedulers, "ldst pressure");
    assert!(
        stats.stalls.ldst_full > 0,
        "saturated LDST queues must be attributed: {:?}",
        stats.stalls
    );
    assert_eq!(stats.issued_tensor_loads, 8 * 12);
}

/// A single warp spamming dependent MMAs saturates its tensor cores:
/// `tensor_busy` must fire and the identity must balance.
#[test]
fn tensor_core_pressure_is_attributed() {
    let mut ops = Vec::new();
    for i in 0..32u16 {
        ops.push(Op::WmmaMma {
            d: ArchReg(8 + i % 4),
            a: ArchReg(0),
            b: ArchReg(1),
            c: ArchReg(8 + i % 4),
        });
    }
    ops.push(Op::Exit);
    let k = TestKernel {
        ctas: vec![CtaTrace {
            warps: vec![WarpTrace { ops }],
        }],
        shared: 0,
        workspace: None,
    };
    let cfg = config();
    let schedulers = cfg.schedulers;
    let stats = run_kernel(&k, &[0], cfg);
    assert_accounted(&stats, schedulers, "mma pressure");
    assert_eq!(stats.issued_mma, 32);
    assert!(
        stats.stalls.tensor_busy + stats.stalls.data_dependency > 0,
        "back-to-back MMAs must stall on TCs or operands: {:?}",
        stats.stalls
    );
}
