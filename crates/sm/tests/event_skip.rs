//! Equivalence gate for the event-driven tick loop: the wakeup-wheel
//! fast-forward must produce `SmStats` (and traces) byte-identical to the
//! tick-by-tick reference loop — it may only be faster.
//!
//! Uses the explicit `run_kernel_reference` entry points rather than the
//! process-global `force_tick_reference` toggle, so these tests are safe
//! under the parallel test runner.

use duplo_core::LhbConfig;
use duplo_isa::{ArchReg, CtaTrace, Kernel, Op, Space, WarpTrace, WorkspaceDesc};
use duplo_sm::{
    SmConfig, TraceSpec, run_kernel, run_kernel_reference, run_kernel_traced,
    run_kernel_traced_reference,
};
use duplo_testkit::prop::check;
use duplo_testkit::{Rng, require, require_eq};

struct FuzzKernel {
    ctas: Vec<CtaTrace>,
    workspace: Option<WorkspaceDesc>,
}

impl Kernel for FuzzKernel {
    fn name(&self) -> &str {
        "fuzz"
    }
    fn num_ctas(&self) -> usize {
        self.ctas.len()
    }
    fn cta(&self, idx: usize) -> CtaTrace {
        self.ctas[idx].clone()
    }
    fn shared_mem_per_cta(&self) -> u32 {
        1024
    }
    fn regs_per_warp(&self) -> u32 {
        16
    }
    fn workspace(&self) -> Option<WorkspaceDesc> {
        self.workspace
    }
}

fn ws_desc() -> WorkspaceDesc {
    WorkspaceDesc {
        base: 0x10_0000,
        bytes: 256 * 144 * 2,
        elem_bytes: 2,
        row_stride_elems: 144,
        input_w: 16,
        channels: 16,
        fw: 3,
        fh: 3,
        out_w: 16,
        out_h: 16,
        stride: 1,
        pad: 1,
        batch: 1,
    }
}

fn arb_warp(ops_seed: &[(u8, u8)], barriers: usize) -> WarpTrace {
    let mut ops = Vec::new();
    let bar_every = if barriers > 0 {
        (ops_seed.len() / (barriers + 1)).max(1)
    } else {
        usize::MAX
    };
    for (i, (kind, arg)) in ops_seed.iter().enumerate() {
        match kind % 4 {
            0 => ops.push(Op::Alu {
                dst: Some(ArchReg(u16::from(arg % 4))),
                latency: 2 + arg % 6,
            }),
            1 => ops.push(Op::WmmaLoad {
                dst: ArchReg(u16::from(arg % 4)),
                addr: 0x10_0000 + u64::from(*arg) * 288,
                rows: 4 + (arg % 12),
                seg_bytes: 32,
                row_stride: 288,
                space: if arg % 5 == 0 {
                    Space::Shared
                } else {
                    Space::Global
                },
            }),
            2 => ops.push(Op::WmmaMma {
                d: ArchReg(8 + u16::from(arg % 4)),
                a: ArchReg(u16::from(arg % 4)),
                b: ArchReg(u16::from((arg / 4) % 4)),
                c: ArchReg(8 + u16::from(arg % 4)),
            }),
            _ => ops.push(Op::St {
                src: ArchReg(8),
                addr: 0x40_0000 + u64::from(*arg) * 64,
                bytes: 64,
                space: Space::Global,
            }),
        }
        if i % bar_every == bar_every - 1 {
            ops.push(Op::Bar);
        }
    }
    ops.push(Op::Exit);
    WarpTrace { ops }
}

#[derive(Debug)]
struct Case {
    ops_seed: Vec<(u8, u8)>,
    warps: usize,
    barriers: usize,
    duplo: bool,
}

fn arb_case(rng: &mut Rng) -> Option<Case> {
    let len = rng.gen_range(1usize..40);
    let ops_seed = (0..len)
        .map(|_| (rng.gen_range(0u8..4), rng.gen_range(0u8..=255)))
        .collect();
    Some(Case {
        ops_seed,
        warps: rng.gen_range(1usize..5),
        barriers: rng.gen_range(0usize..3),
        duplo: rng.gen_bool(0.5),
    })
}

fn fuzz_kernel(case: &Case) -> FuzzKernel {
    let cta = CtaTrace {
        warps: (0..case.warps)
            .map(|_| arb_warp(&case.ops_seed, case.barriers))
            .collect(),
    };
    FuzzKernel {
        ctas: vec![cta.clone(), cta],
        workspace: Some(ws_desc()),
    }
}

fn cfg(duplo: bool) -> SmConfig {
    let mut cfg = SmConfig::titan_v(80);
    if duplo {
        cfg.lhb = Some(LhbConfig::direct_mapped(64));
    }
    cfg
}

/// Every randomly generated kernel yields bit-identical `SmStats` from the
/// event-driven and the tick-by-tick loop, and the stall-attribution
/// identity holds in both.
#[test]
fn event_skip_matches_reference_on_random_kernels() {
    check(
        "event_skip_matches_reference_on_random_kernels",
        24,
        arb_case,
        |case| {
            let event = run_kernel(&fuzz_kernel(case), &[0, 1], cfg(case.duplo));
            let reference = run_kernel_reference(&fuzz_kernel(case), &[0, 1], cfg(case.duplo));
            require!(
                event == reference,
                "event-driven stats diverge from reference:\n{event:#?}\nvs\n{reference:#?}"
            );
            require_eq!(
                event.issued_total() + event.stalls.total(),
                event.cycles * 4,
                "issued+stalls == cycles x schedulers must hold after skips"
            );
            Ok(())
        },
    );
}

/// A latency- and barrier-heavy kernel (DRAM round trips, MMA chains,
/// barriers) — the shape the wakeup wheel accelerates most — still matches
/// the reference exactly, including the cycle-resolved trace.
#[test]
fn event_skip_matches_reference_on_latency_heavy_kernel_with_trace() {
    let mut ops = Vec::new();
    for i in 0..12u64 {
        ops.push(Op::WmmaLoad {
            dst: ArchReg((i % 4) as u16),
            addr: 0x10_0000 + i * 4096,
            rows: 16,
            seg_bytes: 32,
            row_stride: 288,
            space: Space::Global,
        });
        ops.push(Op::WmmaMma {
            d: ArchReg(8),
            a: ArchReg((i % 4) as u16),
            b: ArchReg(((i + 1) % 4) as u16),
            c: ArchReg(8),
        });
        ops.push(Op::Bar);
    }
    ops.push(Op::Exit);
    let cta = CtaTrace {
        warps: (0..4).map(|_| WarpTrace { ops: ops.clone() }).collect(),
    };
    let kernel = FuzzKernel {
        ctas: vec![cta],
        workspace: Some(ws_desc()),
    };
    let spec = TraceSpec {
        interval: 64,
        ..TraceSpec::default()
    };
    let (event_stats, event_trace) = run_kernel_traced(&kernel, &[0], cfg(true), spec);
    let (ref_stats, ref_trace) = run_kernel_traced_reference(&kernel, &[0], cfg(true), spec);
    assert_eq!(event_stats, ref_stats, "traced stats diverge");
    assert_eq!(event_trace.interval, ref_trace.interval);
    assert_eq!(event_trace.samples, ref_trace.samples, "timelines diverge");
    assert_eq!(event_trace.cta_spans, ref_trace.cta_spans);
    assert_eq!(event_trace.dropped_samples, ref_trace.dropped_samples);
    assert_eq!(event_trace.dropped_spans, ref_trace.dropped_spans);
    // The kernel really exercised the interesting machinery.
    assert!(event_stats.stalls.barrier > 0, "expected barrier stalls");
    assert!(
        event_stats.stalls.data_dependency > 0,
        "expected dependency stalls"
    );
    assert_eq!(
        event_stats.issued_total() + event_stats.stalls.total(),
        event_stats.cycles * 4
    );
}

/// The untraced run and the traced run agree on final statistics in event
/// mode (trace-sample boundaries cap skips but must not change results).
#[test]
fn tracing_does_not_perturb_event_skip_results() {
    let case = Case {
        ops_seed: (0..24).map(|i| (i % 4, i * 11)).collect(),
        warps: 3,
        barriers: 2,
        duplo: true,
    };
    let plain = run_kernel(&fuzz_kernel(&case), &[0, 1], cfg(true));
    let (traced, _) = run_kernel_traced(
        &fuzz_kernel(&case),
        &[0, 1],
        cfg(true),
        TraceSpec {
            interval: 32,
            ..TraceSpec::default()
        },
    );
    assert_eq!(plain, traced);
}
