//! Byte-precise text comparison for differential tests.
//!
//! The differential replay harness asserts that two independently produced
//! documents (generator-path vs replayed `ExperimentResult` JSON, rendered
//! tables, trace exports) are byte-identical. A bare `assert_eq!` on two
//! multi-kilobyte strings buries the divergence; [`first_divergence`] pins
//! it to a byte/line/column, and [`render_report`] formats the two
//! offending lines with a caret for the failure message.

use std::fmt;

/// The first point where two documents disagree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Byte offset of the first differing byte (or the length of the
    /// shorter document, when one is a prefix of the other).
    pub byte: usize,
    /// 1-based line of the divergence in the expected document.
    pub line: usize,
    /// 1-based column (byte within the line).
    pub col: usize,
    /// The expected document's line at the divergence (may be empty when
    /// the expected document ended first).
    pub expected_line: String,
    /// The actual document's line at the divergence.
    pub actual_line: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "byte {} (line {}, col {})",
            self.byte, self.line, self.col
        )
    }
}

/// Returns the first byte where `expected` and `actual` differ, or `None`
/// when they are byte-identical.
pub fn first_divergence(expected: &str, actual: &str) -> Option<Divergence> {
    let eb = expected.as_bytes();
    let ab = actual.as_bytes();
    let byte = eb
        .iter()
        .zip(ab)
        .position(|(e, a)| e != a)
        .unwrap_or_else(|| eb.len().min(ab.len()));
    if byte == eb.len() && byte == ab.len() {
        return None;
    }
    let prefix = &eb[..byte.min(eb.len())];
    let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
    let line_start = prefix
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let col = byte - line_start + 1;
    let take_line = |doc: &str| {
        doc.get(line_start..)
            .unwrap_or("")
            .lines()
            .next()
            .unwrap_or("")
            .to_string()
    };
    Some(Divergence {
        byte,
        line,
        col,
        expected_line: take_line(expected),
        actual_line: take_line(actual),
    })
}

/// Formats a differential failure: where the documents diverge, and the
/// two offending lines with a column caret. Returns `None` when the
/// documents are byte-identical.
pub fn render_report(label: &str, expected: &str, actual: &str) -> Option<String> {
    let d = first_divergence(expected, actual)?;
    let caret = format!("{}^", " ".repeat(d.col.saturating_sub(1)));
    Some(format!(
        "{label}: documents diverge at byte {} (line {}, col {})\n\
         expected | {}\n\
         actual   | {}\n\
         .........| {caret}\n\
         (expected {} bytes, actual {} bytes)",
        d.byte,
        d.line,
        d.col,
        d.expected_line,
        d.actual_line,
        expected.len(),
        actual.len(),
    ))
}

/// Asserts byte-identity with a [`render_report`] failure message.
///
/// # Panics
///
/// Panics with the rendered divergence report when the documents differ.
pub fn assert_identical(label: &str, expected: &str, actual: &str) {
    if let Some(report) = render_report(label, expected, actual) {
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_no_divergence() {
        assert_eq!(first_divergence("", ""), None);
        assert_eq!(first_divergence("abc\ndef\n", "abc\ndef\n"), None);
        assert!(render_report("t", "same", "same").is_none());
    }

    #[test]
    fn divergence_is_located_by_line_and_column() {
        let exp = "alpha\nbeta\ngamma\n";
        let act = "alpha\nbexa\ngamma\n";
        let d = first_divergence(exp, act).expect("documents differ");
        assert_eq!(d.byte, 8);
        assert_eq!((d.line, d.col), (2, 3));
        assert_eq!(d.expected_line, "beta");
        assert_eq!(d.actual_line, "bexa");
    }

    #[test]
    fn prefix_truncation_diverges_at_the_shorter_length() {
        let d = first_divergence("abcdef", "abc").expect("lengths differ");
        assert_eq!(d.byte, 3);
        assert_eq!(d.expected_line, "abcdef");
        assert_eq!(d.actual_line, "abc");
    }

    #[test]
    fn report_carries_the_caret_and_byte_counts() {
        let r = render_report("json", "a\nxbc", "a\nxyc").expect("differ");
        assert!(r.contains("line 2, col 2"), "{r}");
        assert!(r.contains(" ^"), "{r}");
        assert!(r.contains("expected 5 bytes, actual 5 bytes"), "{r}");
    }

    #[test]
    #[should_panic(expected = "diverge at byte 0")]
    fn assert_identical_panics_with_the_report() {
        assert_identical("t", "x", "y");
    }
}
