//! A lightweight timer-based bench harness (the workspace's Criterion
//! replacement).
//!
//! Each bench target (`harness = false`) builds a [`Bench`] group and
//! registers closures with [`Bench::bench`]: the harness runs a warmup,
//! then N timed iterations, and prints one aligned line per benchmark with
//! the median, p95 and minimum wall-clock time.
//!
//! Iteration count can be tuned with `DUPLO_BENCH_ITERS=<n>` (default 12)
//! — enough for a stable median without Criterion's statistical machinery,
//! and fast enough that `cargo bench --workspace` stays in CI budget.

use std::time::{Duration, Instant};

/// Summary statistics of one benchmark.
#[derive(Copy, Clone, Debug)]
pub struct Stats {
    /// Timed iterations (excluding warmup).
    pub iters: u32,
    /// Median iteration time.
    pub median: Duration,
    /// 95th-percentile iteration time.
    pub p95: Duration,
    /// Fastest iteration.
    pub min: Duration,
}

/// A named group of benchmarks sharing warmup/iteration settings.
#[derive(Clone, Debug)]
pub struct Bench {
    group: String,
    warmup: u32,
    iters: u32,
}

impl Bench {
    /// Creates a bench group; iteration count comes from
    /// `DUPLO_BENCH_ITERS` (default 12), warmup is 2 iterations.
    pub fn group(name: impl Into<String>) -> Bench {
        let iters = std::env::var("DUPLO_BENCH_ITERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(12);
        Bench {
            group: name.into(),
            warmup: 2,
            iters,
        }
    }

    /// Overrides the timed iteration count.
    pub fn with_iters(mut self, iters: u32) -> Bench {
        self.iters = iters.max(1);
        self
    }

    /// Overrides the warmup iteration count.
    pub fn with_warmup(mut self, warmup: u32) -> Bench {
        self.warmup = warmup;
        self
    }

    /// Runs and reports one benchmark; returns its statistics.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> Stats {
        for _ in 0..self.warmup {
            f();
        }
        let mut times: Vec<Duration> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let pick = |q: f64| times[((times.len() - 1) as f64 * q).round() as usize];
        let stats = Stats {
            iters: self.iters,
            median: pick(0.5),
            p95: pick(0.95),
            min: times[0],
        };
        println!(
            "{:<44} median {:>10}   p95 {:>10}   min {:>10}   ({} iters)",
            format!("{}/{}", self.group, name),
            fmt_duration(stats.median),
            fmt_duration(stats.p95),
            fmt_duration(stats.min),
            stats.iters,
        );
        stats
    }
}

/// Formats a duration with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered() {
        let b = Bench::group("test").with_iters(9).with_warmup(1);
        let mut x = 0u64;
        let s = b.bench("spin", || {
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            std::hint::black_box(x);
        });
        assert_eq!(s.iters, 9);
        assert!(s.min <= s.median && s.median <= s.p95);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
    }
}
