//! A lightweight timer-based bench harness (the workspace's Criterion
//! replacement).
//!
//! Each bench target (`harness = false`) builds a [`Bench`] group and
//! registers closures with [`Bench::bench`]: the harness runs a warmup,
//! then N timed iterations, and prints one aligned line per benchmark with
//! the median, p95 and minimum wall-clock time.
//!
//! Iteration count can be tuned with `DUPLO_BENCH_ITERS=<n>` (default 12)
//! — enough for a stable median without Criterion's statistical machinery,
//! and fast enough that `cargo bench --workspace` stays in CI budget.

use std::time::{Duration, Instant};

/// Summary statistics of one benchmark.
#[derive(Copy, Clone, Debug)]
pub struct Stats {
    /// Timed iterations (excluding warmup).
    pub iters: u32,
    /// Median iteration time.
    pub median: Duration,
    /// 95th-percentile iteration time.
    pub p95: Duration,
    /// Fastest iteration.
    pub min: Duration,
}

/// A named group of benchmarks sharing warmup/iteration settings.
#[derive(Clone, Debug)]
pub struct Bench {
    group: String,
    warmup: u32,
    iters: u32,
}

impl Bench {
    /// Creates a bench group; iteration count comes from
    /// `DUPLO_BENCH_ITERS` (default 12), warmup is 2 iterations.
    pub fn group(name: impl Into<String>) -> Bench {
        let iters = std::env::var("DUPLO_BENCH_ITERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(12);
        Bench {
            group: name.into(),
            warmup: 2,
            iters,
        }
    }

    /// Overrides the timed iteration count.
    pub fn with_iters(mut self, iters: u32) -> Bench {
        self.iters = iters.max(1);
        self
    }

    /// Overrides the warmup iteration count.
    pub fn with_warmup(mut self, warmup: u32) -> Bench {
        self.warmup = warmup;
        self
    }

    /// Runs and reports one benchmark; returns its statistics.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) -> Stats {
        for _ in 0..self.warmup {
            f();
        }
        let mut times: Vec<Duration> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        let pick = |q: f64| times[((times.len() - 1) as f64 * q).round() as usize];
        let stats = Stats {
            iters: self.iters,
            median: pick(0.5),
            p95: pick(0.95),
            min: times[0],
        };
        println!(
            "{:<44} median {:>10}   p95 {:>10}   min {:>10}   ({} iters)",
            format!("{}/{}", self.group, name),
            fmt_duration(stats.median),
            fmt_duration(stats.p95),
            fmt_duration(stats.min),
            stats.iters,
        );
        stats
    }
}

/// One measured entry of a [`BenchReport`]: a named subject with ordered
/// `(metric, value)` pairs.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Subject name (e.g. a registry experiment).
    pub name: String,
    /// Ordered metric values; emitted in insertion order.
    pub metrics: Vec<(String, MetricValue)>,
}

/// A metric value in a bench report.
#[derive(Copy, Clone, Debug)]
pub enum MetricValue {
    /// An exact count (cycles, iterations).
    U64(u64),
    /// A measured quantity (seconds, rates); serialized with 6 fixed
    /// decimals so the file shape is stable across runs.
    F64(f64),
}

/// A machine-readable performance report (the committed `BENCH_duplo.json`
/// trajectory file), serialized with the in-crate zero-dependency JSON
/// emitter: keys in insertion order, `U64` as plain integers, `F64` with
/// fixed six-decimal formatting, so two runs differ only where the
/// measurements differ.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Emitted as the top-level `schema_version` (callers pass their
    /// result-schema version so shared validators accept the file).
    pub schema: u64,
    /// Free-form context pairs (mode, sample size) emitted under `"meta"`.
    pub meta: Vec<(String, String)>,
    /// Per-subject entries, in run order.
    pub entries: Vec<BenchEntry>,
    /// Whole-run summary metrics emitted under `"summary"`.
    pub summary: Vec<(String, MetricValue)>,
}

fn push_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_metric(out: &mut String, v: MetricValue) {
    match v {
        MetricValue::U64(n) => out.push_str(&n.to_string()),
        MetricValue::F64(x) => out.push_str(&format!("{x:.6}")),
    }
}

fn push_metric_obj(out: &mut String, indent: &str, metrics: &[(String, MetricValue)]) {
    out.push_str("{\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        out.push_str(indent);
        out.push_str("  ");
        push_json_escaped(out, k);
        out.push_str(": ");
        push_metric(out, *v);
        out.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
    }
    out.push_str(indent);
    out.push('}');
}

impl BenchReport {
    /// Serializes the report as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema_version\": ");
        out.push_str(&self.schema.to_string());
        out.push_str(",\n  \"meta\": {\n");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            out.push_str("    ");
            push_json_escaped(&mut out, k);
            out.push_str(": ");
            push_json_escaped(&mut out, v);
            out.push_str(if i + 1 < self.meta.len() { ",\n" } else { "\n" });
        }
        out.push_str("  },\n  \"experiments\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n      \"name\": ");
            push_json_escaped(&mut out, &e.name);
            for (k, v) in &e.metrics {
                out.push_str(",\n      ");
                push_json_escaped(&mut out, k);
                out.push_str(": ");
                push_metric(&mut out, *v);
            }
            out.push_str("\n    }");
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"summary\": ");
        push_metric_obj(&mut out, "  ", &self.summary);
        out.push_str("\n}\n");
        out
    }

    /// Writes the report to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// Formats a duration with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered() {
        let b = Bench::group("test").with_iters(9).with_warmup(1);
        let mut x = 0u64;
        let s = b.bench("spin", || {
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            std::hint::black_box(x);
        });
        assert_eq!(s.iters, 9);
        assert!(s.min <= s.median && s.median <= s.p95);
    }

    #[test]
    fn bench_report_json_is_deterministic_and_shaped() {
        let report = BenchReport {
            schema: 1,
            meta: vec![("mode".into(), "event\"skip".into())],
            entries: vec![BenchEntry {
                name: "fig10_speedup".into(),
                metrics: vec![
                    ("cycles".into(), MetricValue::U64(123456)),
                    ("wall_s".into(), MetricValue::F64(0.25)),
                ],
            }],
            summary: vec![("speedup_gmean".into(), MetricValue::F64(2.5))],
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b, "serialization must be deterministic");
        assert!(a.contains("\"cycles\": 123456"), "{a}");
        assert!(a.contains("\"wall_s\": 0.250000"), "{a}");
        assert!(a.contains("\\\"skip"), "quotes must be escaped: {a}");
        assert!(a.ends_with("}\n"), "{a}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
    }
}
