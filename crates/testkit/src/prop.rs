//! A minimal, hermetic property-testing runner.
//!
//! [`check`] generates N random cases from a fixed seed, runs a property
//! over each, and — on failure — **shrinks** the failing case before
//! panicking with a reproducible report.
//!
//! # Model
//!
//! A *generator* is a function `Fn(&mut Rng) -> Option<T>`: it draws from
//! the RNG and returns the case, or `None` to discard (the `prop_assume!`
//! equivalent). A *property* is `Fn(&T) -> Result<(), String>`; the
//! [`crate::require!`]/[`crate::require_eq!`] macros build the `Err` arm,
//! and plain `assert!` panics are caught and treated as failures too.
//!
//! # Shrinking
//!
//! Instead of requiring a `Shrink` impl per type, the runner records the
//! raw 64-bit *choice tape* the generator consumed (the Hypothesis
//! approach) and searches for a shorter/smaller tape that still fails:
//! truncating the tape (exhausted replays draw zeros) and moving
//! individual choices toward zero. Because every `gen_range` maps the zero
//! draw to its range minimum, smaller tapes mean structurally smaller
//! cases — no per-type shrinking code needed.
//!
//! # Reproducibility
//!
//! The seed defaults to a fixed constant, so CI runs are deterministic.
//! Set `DUPLO_TEST_SEED=<u64>` to explore a different universe of cases,
//! and `DUPLO_TEST_CASES=<n>` to scale the case count; a failure report
//! names the seed that produced it.

use crate::rng::{Rng, splitmix64};
use std::fmt::Debug;
use std::panic::{AssertUnwindSafe, catch_unwind};

/// The default seed of every property in the workspace.
pub const DEFAULT_SEED: u64 = 0xD0_D1_D2_D3_00C0FFEE;

/// Runner configuration.
#[derive(Copy, Clone, Debug)]
pub struct Config {
    /// Number of accepted (non-discarded) cases to run.
    pub cases: u32,
    /// Master seed; each case derives an independent stream from it.
    pub seed: u64,
    /// Cap on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Config {
    /// Builds a configuration from the environment: `DUPLO_TEST_SEED`
    /// overrides the seed, `DUPLO_TEST_CASES` overrides `default_cases`.
    pub fn from_env(default_cases: u32) -> Config {
        let seed = std::env::var("DUPLO_TEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let cases = std::env::var("DUPLO_TEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_cases);
        Config {
            cases,
            seed,
            max_shrink_iters: 512,
        }
    }
}

/// Runs `prop` over `cases` generated cases; panics with a shrunk,
/// reproducible report on the first failure.
///
/// # Panics
///
/// Panics if the property fails for any generated case, or if the
/// generator discards too many candidates (> 20x the case target).
///
/// # Examples
///
/// ```
/// duplo_testkit::prop::check("addition commutes", 64, |rng| {
///     Some((rng.gen_range(0u32..1000), rng.gen_range(0u32..1000)))
/// }, |&(a, b)| {
///     duplo_testkit::require_eq!(a + b, b + a);
///     Ok(())
/// });
/// ```
pub fn check<T, G, P>(name: &str, cases: u32, gen: G, prop: P)
where
    T: Debug,
    G: Fn(&mut Rng) -> Option<T>,
    P: Fn(&T) -> Result<(), String>,
{
    check_with(&Config::from_env(cases), name, gen, prop)
}

/// [`check`] with an explicit [`Config`].
pub fn check_with<T, G, P>(config: &Config, name: &str, gen: G, prop: P)
where
    T: Debug,
    G: Fn(&mut Rng) -> Option<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let max_attempts = u64::from(config.cases) * 20;
    while accepted < config.cases {
        assert!(
            attempt < max_attempts,
            "property '{name}': generator discarded too many cases \
             ({accepted}/{} accepted after {attempt} attempts)",
            config.cases
        );
        // Independent stream per attempt, derived from the master seed.
        let mut sm = config.seed ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
        let case_seed = splitmix64(&mut sm);
        attempt += 1;
        let mut rng = Rng::recording(case_seed);
        let Some(value) = gen(&mut rng) else {
            continue;
        };
        accepted += 1;
        if let Err(msg) = eval(&prop, &value) {
            let tape = rng.into_tape();
            let best = shrink(&tape, &gen, &prop, config.max_shrink_iters);
            let (shrunk, shrunk_msg) =
                replay_failure(&best, &gen, &prop).unwrap_or((format!("{value:?}"), msg.clone()));
            panic!(
                "property '{name}' failed at case {accepted} \
                 (seed {seed}):\n  {shrunk_msg}\n  shrunk input: {shrunk}\n  \
                 original input: {value:?}\n  original failure: {msg}\n  \
                 rerun with DUPLO_TEST_SEED={seed}",
                seed = config.seed,
            );
        }
    }
}

/// Evaluates the property, converting panics into `Err`.
fn eval<T, P>(prop: &P, value: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(&payload)),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

/// Whether a choice tape still produces a failing case.
fn tape_fails<T, G, P>(tape: &[u64], gen: &G, prop: &P) -> bool
where
    G: Fn(&mut Rng) -> Option<T>,
    P: Fn(&T) -> Result<(), String>,
{
    replay_failure_value(tape, gen, prop).is_some()
}

fn replay_failure_value<T, G, P>(tape: &[u64], gen: &G, prop: &P) -> Option<T>
where
    G: Fn(&mut Rng) -> Option<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rng = Rng::replaying(tape);
    let value = catch_unwind(AssertUnwindSafe(|| gen(&mut rng))).ok()??;
    match eval(prop, &value) {
        Err(_) => Some(value),
        Ok(()) => None,
    }
}

fn replay_failure<T, G, P>(tape: &[u64], gen: &G, prop: &P) -> Option<(String, String)>
where
    T: Debug,
    G: Fn(&mut Rng) -> Option<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let value = replay_failure_value(tape, gen, prop)?;
    let msg = eval(prop, &value).err()?;
    Some((format!("{value:?}"), msg))
}

/// Greedy choice-tape shrinking: truncation passes, then per-element
/// reduction toward zero, repeated until a fixpoint or the iteration cap.
fn shrink<T, G, P>(tape: &[u64], gen: &G, prop: &P, max_iters: u32) -> Vec<u64>
where
    G: Fn(&mut Rng) -> Option<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut best = tape.to_vec();
    let mut iters = 0u32;
    let try_candidate = |cand: Vec<u64>, best: &mut Vec<u64>, iters: &mut u32| -> bool {
        if *iters >= max_iters {
            return false;
        }
        *iters += 1;
        if tape_fails(&cand, gen, prop) {
            *best = cand;
            true
        } else {
            false
        }
    };
    loop {
        let mut improved = false;
        // Pass 1: drop the tail (halving steps). Replay serves zeros past
        // the end, so truncation zeroes the remaining structure.
        let mut n = best.len();
        while n > 0 {
            n /= 2;
            if try_candidate(best[..n].to_vec(), &mut best, &mut iters) {
                improved = true;
                break;
            }
        }
        // Pass 2: delete individual choices (shifts the tail left —
        // the "remove one element" shrink for variable-length cases).
        let mut i = 0;
        while i < best.len() {
            let mut cand = best.clone();
            cand.remove(i);
            if try_candidate(cand, &mut best, &mut iters) {
                improved = true;
            } else {
                i += 1;
            }
        }
        // Pass 3: move individual choices toward zero.
        let mut i = 0;
        while i < best.len() {
            let orig = best[i];
            for cand_val in [0, orig >> 32, orig >> 1, orig.wrapping_sub(1)] {
                if cand_val == orig || (cand_val == 0 && orig == 0) {
                    continue;
                }
                let mut cand = best.clone();
                cand[i] = cand_val;
                if try_candidate(cand, &mut best, &mut iters) {
                    improved = true;
                    break;
                }
            }
            i += 1;
        }
        if !improved || iters >= max_iters {
            break;
        }
    }
    // Strip trailing zeros: replay treats them identically to absence.
    while best.last() == Some(&0) {
        best.pop();
    }
    best
}

/// Builds the `Err(String)` arm of a property on a false condition.
///
/// `require!(cond)` or `require!(cond, "format", args...)`; the enclosing
/// function must return `Result<(), String>`.
#[macro_export]
macro_rules! require {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "requirement failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!(
                "requirement failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($arg)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality-asserting counterpart of [`require!`].
#[macro_export]
macro_rules! require_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "requirement failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "requirement failed: {} == {} (left: {:?}, right: {:?}) — {} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($arg)+),
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            "u32 addition is monotone here",
            64,
            |rng| Some((rng.gen_range(0u32..1000), rng.gen_range(0u32..1000))),
            |&(a, b)| {
                counter.set(counter.get() + 1);
                require!(a + b >= a);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 64);
    }

    #[test]
    fn discards_are_regenerated() {
        // Half the candidates are discarded; the runner must still reach
        // the case target.
        let counter = std::cell::Cell::new(0u32);
        check(
            "discards",
            32,
            |rng| {
                let v = rng.gen_range(0u32..100);
                if v % 2 == 0 { Some(v) } else { None }
            },
            |&v| {
                counter.set(counter.get() + 1);
                require!(v % 2 == 0);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 32);
    }

    #[test]
    fn failure_is_reported_and_shrunk() {
        let result = catch_unwind(|| {
            check_with(
                &Config {
                    cases: 256,
                    seed: 7,
                    max_shrink_iters: 50_000,
                },
                "values below 50",
                |rng| Some(rng.gen_range(0u64..1000)),
                |&v| {
                    require!(v < 50, "v = {v}");
                    Ok(())
                },
            )
        });
        let msg = panic_message(&result.expect_err("property must fail"));
        assert!(msg.contains("values below 50"), "{msg}");
        assert!(msg.contains("DUPLO_TEST_SEED=7"), "{msg}");
        // The shrunk counterexample must be the boundary value: the
        // smallest failing input is exactly 50.
        assert!(msg.contains("shrunk input: 50"), "{msg}");
    }

    #[test]
    fn shrinking_handles_composite_cases() {
        // Vec generation: length + elements. The minimal failing case for
        // "no element >= 7" is a single-element vector [7].
        let result = catch_unwind(|| {
            check_with(
                &Config {
                    cases: 64,
                    seed: 3,
                    max_shrink_iters: 50_000,
                },
                "all elements below 7",
                |rng| {
                    let len = rng.gen_range(0usize..20);
                    Some(
                        (0..len)
                            .map(|_| rng.gen_range(0u32..100))
                            .collect::<Vec<_>>(),
                    )
                },
                |v| {
                    for &x in v {
                        require!(x < 7, "x = {x}");
                    }
                    Ok(())
                },
            )
        });
        let msg = panic_message(&result.expect_err("property must fail"));
        assert!(msg.contains("shrunk input: [7]"), "{msg}");
    }

    #[test]
    fn plain_panics_are_caught_as_failures() {
        let result = catch_unwind(|| {
            check_with(
                &Config {
                    cases: 16,
                    seed: 1,
                    max_shrink_iters: 64,
                },
                "asserting property",
                |rng| Some(rng.gen_range(0u32..10)),
                |&v| {
                    assert!(v < 100, "unreachable");
                    if v > 1_000_000 {
                        return Err("never".into());
                    }
                    std::panic::panic_any(format!("boom {v}"));
                },
            )
        });
        let msg = panic_message(&result.expect_err("must fail"));
        assert!(msg.contains("panicked: boom"), "{msg}");
    }

    #[test]
    fn same_seed_same_cases() {
        let collect = |seed: u64| {
            let log = std::cell::RefCell::new(Vec::new());
            check_with(
                &Config {
                    cases: 32,
                    seed,
                    max_shrink_iters: 0,
                },
                "log",
                |rng| Some(rng.gen_range(0u64..1_000_000)),
                |&v| {
                    log.borrow_mut().push(v);
                    Ok(())
                },
            );
            log.into_inner()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }
}
