//! Hermetic test infrastructure for the Duplo workspace.
//!
//! The workspace builds and tests fully offline: no crates.io dependency is
//! ever pulled. This crate supplies, in-tree, the three pieces the test
//! suite needs from the outside world:
//!
//! * [`rng`] — a seedable, deterministic PRNG (SplitMix64-seeded
//!   xoshiro256++) with the `gen_range` / `shuffle` / `fill_bytes` surface
//!   the crates use for randomized fixtures,
//! * [`prop`] — a minimal property-testing runner
//!   ([`prop::check`]) with fixed-seed case generation, failure-case
//!   shrinking over the underlying choice tape, and an environment
//!   seed override (`DUPLO_TEST_SEED`),
//! * [`bench`] — a lightweight timer-based bench harness (warmup + N
//!   iterations, median/p95 report) for the `duplo-bench` bench targets,
//! * [`diff`] — byte-precise document comparison for differential tests
//!   (first-divergence location, caret-annotated failure reports).
//!
//! # Determinism
//!
//! Every randomized test in the workspace derives all of its randomness
//! from a single per-property seed, which defaults to a fixed constant and
//! can be overridden with `DUPLO_TEST_SEED=<u64>`. Two runs with the same
//! seed generate the same cases in the same order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod diff;
pub mod prop;
pub mod rng;

pub use rng::Rng;
