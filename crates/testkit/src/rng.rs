//! Deterministic pseudo-random number generation.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded from a
//! single `u64` through **SplitMix64** — the canonical seeding procedure
//! that guarantees a well-mixed initial state even for small seeds. Both
//! algorithms are public domain; this is a from-scratch implementation.
//!
//! The type intentionally mirrors the small slice of the `rand` crate's
//! surface the workspace used (`seed_from_u64`, `gen_range`, `shuffle`),
//! so randomized fixtures read the same as before the hermetic migration.

use std::ops::{Range, RangeInclusive};

/// Advances a SplitMix64 state and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the generator sources raw 64-bit draws (see [`Rng::recording`] and
/// [`Rng::replaying`]; used by the property-test shrinker).
#[derive(Clone, Debug)]
enum Tape {
    /// Plain generation, no bookkeeping.
    Off,
    /// Record every raw draw (so a failing case can be shrunk later).
    Record(Vec<u64>),
    /// Serve a fixed choice sequence; zeros once exhausted.
    Replay(Vec<u64>, usize),
}

/// A seedable, deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// # Examples
///
/// ```
/// use duplo_testkit::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x: f32 = a.gen_range(-1.0f32..1.0);
/// assert!((-1.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    tape: Tape,
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams; nearby seeds yield decorrelated streams (SplitMix64
    /// expansion).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            tape: Tape::Off,
        }
    }

    /// A generator that records every raw draw, for later shrinking.
    pub fn recording(seed: u64) -> Rng {
        let mut r = Rng::seed_from_u64(seed);
        r.tape = Tape::Record(Vec::new());
        r
    }

    /// A generator that replays a fixed choice sequence and serves zeros
    /// once it is exhausted (the shrinker's minimal continuation).
    pub fn replaying(choices: &[u64]) -> Rng {
        Rng {
            s: [0; 4],
            tape: Tape::Replay(choices.to_vec(), 0),
        }
    }

    /// Consumes the generator, returning the recorded choice tape (empty
    /// unless constructed with [`Rng::recording`]).
    pub fn into_tape(self) -> Vec<u64> {
        match self.tape {
            Tape::Record(t) => t,
            _ => Vec::new(),
        }
    }

    /// Derives an independent child generator (for splitting one seed into
    /// decorrelated sub-streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        match &mut self.tape {
            Tape::Off => self.raw_u64(),
            Tape::Record(_) => {
                let v = self.raw_u64();
                if let Tape::Record(t) = &mut self.tape {
                    t.push(v);
                }
                v
            }
            Tape::Replay(choices, pos) => {
                let v = choices.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }

    #[inline]
    fn raw_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from `range` (see [`UniformRange`] for the supported
    /// range types).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * F64_SCALE < p
    }

    /// Uniform index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "gen_index on an empty collection");
        (self.next_u64() % len as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Fills `out` with uniform random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

const F64_SCALE: f64 = 1.0 / (1u64 << 53) as f64;
const F32_SCALE: f32 = 1.0 / (1u32 << 24) as f32;

/// A range type [`Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u32() >> 8) as f32 * F32_SCALE; // [0, 1)
        self.start + (self.end - self.start) * unit
    }
}

impl UniformRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * F64_SCALE; // [0, 1)
        self.start + (self.end - self.start) * unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // With all-zero SplitMix64 input the seed words are the SplitMix64
        // outputs of state 0; the first xoshiro256++ output is then fixed
        // forever. Pin it so the stream (and every golden/regression test
        // derived from it) can never silently change.
        let mut r = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Rng::seed_from_u64(0);
            (0..3).map(|_| r.next_u64()).collect()
        };
        assert_eq!(first, again);
        // SplitMix64 known-answer test (state 0 -> first output).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-4i32..4);
            assert!((-4..4).contains(&i));
            let b = r.gen_range(0u8..=255);
            let _ = b; // full range must not panic
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(v, (0..32).collect::<Vec<u32>>(), "shuffle moved something");
    }

    #[test]
    fn recording_and_replay_round_trip() {
        let mut rec = Rng::recording(99);
        let drawn: Vec<u64> = (0..10).map(|_| rec.next_u64()).collect();
        let tape = rec.into_tape();
        assert_eq!(tape, drawn);
        let mut rep = Rng::replaying(&tape);
        let replayed: Vec<u64> = (0..10).map(|_| rep.next_u64()).collect();
        assert_eq!(replayed, drawn);
        // Exhausted replay serves zeros.
        assert_eq!(rep.next_u64(), 0);
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        Rng::seed_from_u64(1).fill_bytes(&mut a);
        Rng::seed_from_u64(1).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 13]);
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut r = Rng::seed_from_u64(2);
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "got {heads}/2000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
