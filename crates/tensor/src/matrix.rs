//! Dense row-major matrices and GEMM.

use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned, dense, row-major `f32` matrix.
///
/// Lowered convolution workspaces, filter matrices and GEMM outputs are all
/// represented as `Matrix`. Multiplication is provided both as a naive
/// reference ([`Matrix::matmul_naive`]) and a cache-blocked version
/// ([`Matrix::matmul`]) used by the functional convolution paths.
///
/// # Examples
///
/// ```
/// use duplo_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c[(0, 0)], 17.0);
/// assert_eq!(c[(1, 0)], 39.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero-filled `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dims must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn<F>(rows: usize, cols: usize, mut f: F) -> Matrix
    where
        F: FnMut(usize, usize) -> f32,
    {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row slices (all must have equal length).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Matrix {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut m = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            m.data[r * cols..(r + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer does not match dims");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Naive triple-loop GEMM reference: `self (m x k) * rhs (k x n)`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dims {} vs {}",
            self.cols, rhs.rows
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self[(i, k)] * rhs[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Cache-blocked GEMM with an ikj loop order.
    ///
    /// Produces results identical in rounding order per output element to a
    /// k-major accumulation, which is what the functional checks rely on.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dims {} vs {}",
            self.cols, rhs.rows
        );
        const BK: usize = 64;
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for k0 in (0..self.cols).step_by(BK) {
            let kend = (k0 + BK).min(self.cols);
            for i in 0..self.rows {
                let arow = self.row(i);
                let orow = &mut out.data[i * n..(i + 1) * n];
                for k in k0..kend {
                    let a = arow[k];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &rhs.data[k * n..(k + 1) * n];
                    for j in 0..n {
                        orow[j] += a * brow[j];
                    }
                }
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:7.2}", self[(r, c)])?;
            }
            if self.cols > 12 {
                write!(f, " ...")?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use duplo_testkit::Rng;

    #[test]
    fn identity_multiplication() {
        let i3 = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.matmul_naive(&i3).as_slice(), a.as_slice());
        assert_eq!(i3.matmul_naive(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn blocked_matches_naive_on_random_shapes() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10 {
            let m = rng.gen_range(1usize..40);
            let k = rng.gen_range(1usize..70);
            let n = rng.gen_range(1usize..40);
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f32..1.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f32..1.0));
            let x = a.matmul_naive(&b);
            let y = a.matmul(&b);
            assert!(approx_eq(x.as_slice(), y.as_slice(), 1e-4), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.transpose().transpose().as_slice(), a.as_slice());
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dims_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn paper_figure1_example() {
        // Figure 1(b): 4x9 workspace times 9x1 filter = the 4 outputs [8,7,-5,8].
        let workspace = Matrix::from_rows(&[
            &[3.0, 1.0, 4.0, 1.0, 0.0, -2.0, 4.0, -2.0, 4.0],
            &[1.0, 4.0, -2.0, 0.0, -2.0, 1.0, -2.0, 4.0, 0.0],
            &[1.0, 0.0, -2.0, 4.0, -2.0, 4.0, -2.0, 1.0, 0.0],
            &[0.0, -2.0, 1.0, -2.0, 4.0, 0.0, 1.0, 0.0, 3.0],
        ]);
        let filter = Matrix::from_vec(9, 1, vec![1.0, 0.0, 3.0, -3.0, -1.0, 2.0, 0.0, 2.0, 1.0]);
        let out = workspace.matmul(&filter);
        assert_eq!(out.as_slice(), &[8.0, 7.0, -5.0, 8.0]);
    }
}
