//! Four-dimensional `NHWC` shapes.

use std::fmt;

/// A tensor shape in `NHWC` order: batch, height, width, channels.
///
/// cuDNN mandates the `NHWC` layout for tensor cores (paper §III-C), so the
/// whole reproduction standardizes on it. The linear index of element
/// `(n, h, w, c)` is `((n * H + h) * W + w) * C + c`.
///
/// # Examples
///
/// ```
/// use duplo_tensor::Nhwc;
///
/// let s = Nhwc::new(8, 56, 56, 64);
/// assert_eq!(s.len(), 8 * 56 * 56 * 64);
/// assert_eq!(s.index(0, 0, 0, 1), 1);
/// assert_eq!(s.index(0, 0, 1, 0), 64);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Nhwc {
    /// Number of images in the batch.
    pub n: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Number of channels.
    pub c: usize,
}

impl Nhwc {
    /// Creates a shape. All dimensions must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n: usize, h: usize, w: usize, c: usize) -> Nhwc {
        assert!(
            n > 0 && h > 0 && w > 0 && c > 0,
            "NHWC dimensions must be nonzero, got {n}x{h}x{w}x{c}"
        );
        Nhwc { n, h, w, c }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n * self.h * self.w * self.c
    }

    /// Returns `true` when the shape holds no elements (never, by
    /// construction, but provided for `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(n, h, w, c)` in row-major `NHWC` order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn index(&self, n: usize, h: usize, w: usize, c: usize) -> usize {
        debug_assert!(n < self.n && h < self.h && w < self.w && c < self.c);
        ((n * self.h + h) * self.w + w) * self.c + c
    }

    /// Inverse of [`Nhwc::index`]: decomposes a linear index into
    /// `(n, h, w, c)` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn coords(&self, idx: usize) -> (usize, usize, usize, usize) {
        assert!(idx < self.len(), "index {idx} out of range for {self}");
        let c = idx % self.c;
        let rest = idx / self.c;
        let w = rest % self.w;
        let rest = rest / self.w;
        let h = rest % self.h;
        let n = rest / self.h;
        (n, h, w, c)
    }

    /// Shape of a single image (`n == 1`) with the same spatial dims.
    pub fn single(&self) -> Nhwc {
        Nhwc { n: 1, ..*self }
    }

    /// Returns the same shape with a different batch size.
    pub fn with_batch(&self, n: usize) -> Nhwc {
        assert!(n > 0, "batch must be nonzero");
        Nhwc { n, ..*self }
    }
}

impl fmt::Display for Nhwc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.h, self.w, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_coords_are_inverse() {
        let s = Nhwc::new(2, 3, 4, 5);
        for idx in 0..s.len() {
            let (n, h, w, c) = s.coords(idx);
            assert_eq!(s.index(n, h, w, c), idx);
        }
    }

    #[test]
    fn channels_are_innermost() {
        let s = Nhwc::new(1, 2, 2, 3);
        assert_eq!(s.index(0, 0, 0, 0) + 1, s.index(0, 0, 0, 1));
        assert_eq!(s.index(0, 0, 0, 2) + 1, s.index(0, 0, 1, 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_rejected() {
        let _ = Nhwc::new(1, 0, 2, 3);
    }

    #[test]
    fn display_matches_paper_table_style() {
        assert_eq!(Nhwc::new(8, 224, 224, 3).to_string(), "8x224x224x3");
    }
}
