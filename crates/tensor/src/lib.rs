//! Tensor substrate for the Duplo reproduction.
//!
//! This crate provides the small set of numerical containers the rest of the
//! workspace builds on:
//!
//! * [`Nhwc`] — a four-dimensional shape in the `NHWC` layout that NVIDIA's
//!   cuDNN mandates for tensor cores (batch, height, width, channels),
//! * [`Tensor4`] — an owned, dense, row-major `NHWC` tensor of `f32`,
//! * [`Matrix`] — an owned, dense, row-major 2-D matrix used for lowered
//!   (im2col) workspaces and GEMM,
//! * [`F16`] — a software half-precision float matching the storage format
//!   tensor cores consume for the `A` and `B` operands.
//!
//! The simulator stores all functional values as `f32` and converts through
//! [`F16`] where the hardware would, so precision behaviour follows the
//! tensor-core pipeline (half-precision inputs, single-precision
//! accumulation).
//!
//! # Examples
//!
//! ```
//! use duplo_tensor::{Nhwc, Tensor4};
//!
//! let shape = Nhwc::new(1, 4, 4, 2);
//! let t = Tensor4::from_fn(shape, |n, h, w, c| (n + h + w + c) as f32);
//! assert_eq!(t.get(0, 1, 2, 1), 4.0);
//! assert_eq!(t.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod f16;
mod matrix;
mod shape;
mod tensor;

pub use f16::F16;
pub use matrix::Matrix;
pub use shape::Nhwc;
pub use tensor::Tensor4;

/// Compares two `f32` slices element-wise within an absolute-plus-relative
/// tolerance, returning the index of the first mismatch.
///
/// Used throughout the test suites to validate convolution algorithms against
/// the direct-convolution reference.
///
/// # Examples
///
/// ```
/// assert_eq!(duplo_tensor::first_mismatch(&[1.0, 2.0], &[1.0, 2.0 + 1e-9], 1e-6), None);
/// assert_eq!(duplo_tensor::first_mismatch(&[1.0], &[2.0], 1e-6), Some(0));
/// ```
pub fn first_mismatch(a: &[f32], b: &[f32], tol: f32) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b).position(|(x, y)| {
        let scale = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() > tol * scale
    })
}

/// Returns `true` when the two slices match within tolerance.
///
/// See [`first_mismatch`] for the comparison rule.
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    first_mismatch(a, b, tol).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatch_reports_length_difference() {
        assert_eq!(first_mismatch(&[1.0, 2.0], &[1.0], 1e-6), Some(1));
    }

    #[test]
    fn mismatch_uses_relative_tolerance_for_large_values() {
        // 1e6 vs 1e6 + 0.5 is within 1e-6 relative tolerance.
        assert!(approx_eq(&[1.0e6], &[1.0e6 + 0.5], 1e-6));
        assert!(!approx_eq(&[1.0e6], &[1.0e6 + 10.0], 1e-6));
    }
}
