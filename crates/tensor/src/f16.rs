//! Software half-precision (IEEE 754 binary16).
//!
//! Tensor cores consume half-precision `A`/`B` operands and accumulate in
//! single precision. The simulator keeps functional data in `f32` but rounds
//! through this type wherever the hardware would store a half, so numerical
//! behaviour matches the real pipeline.

use std::fmt;

/// An IEEE 754 binary16 value stored as its raw bit pattern.
///
/// Conversions to and from `f32` implement round-to-nearest-even, the
/// rounding mode tensor cores use for operand ingestion.
///
/// # Examples
///
/// ```
/// use duplo_tensor::F16;
///
/// let x = F16::from_f32(1.0009765625); // representable plus a hair
/// assert_eq!(x.to_f32(), 1.0009765625);
/// let y = F16::from_f32(1.0001);
/// assert_eq!(y.to_f32(), 1.0); // rounded to nearest representable
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);

    /// Creates an `F16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to half precision with round-to-nearest-even.
    ///
    /// Values above [`F16::MAX`] become infinity; subnormal results are
    /// rounded into the half-precision subnormal range; NaNs are preserved
    /// as quiet NaNs.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN: keep NaN-ness (force quiet bit).
            let m = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | m);
        }

        // Re-bias exponent: f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            return F16(sign | 0x7C00); // overflow to infinity
        }
        if unbiased >= -14 {
            // Normal range: keep top 10 mantissa bits, RNE on the rest.
            let mut m = mant >> 13;
            let rest = mant & 0x1FFF;
            if rest > 0x1000 || (rest == 0x1000 && (m & 1) == 1) {
                m += 1;
            }
            let mut e = (unbiased + 15) as u32;
            if m == 0x400 {
                m = 0;
                e += 1;
                if e >= 31 {
                    return F16(sign | 0x7C00);
                }
            }
            return F16(sign | ((e as u16) << 10) | m as u16);
        }
        if unbiased >= -25 {
            // Subnormal range: shift the implicit leading one into place.
            let full = mant | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13;
            let m = full >> shift;
            let rest = full & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut m16 = m as u16;
            if rest > half || (rest == half && (m16 & 1) == 1) {
                m16 += 1;
            }
            return F16(sign | m16);
        }
        F16(sign) // underflow to signed zero
    }

    /// Converts this half-precision value to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & 0x8000) << 16;
        let exp = u32::from(self.0 >> 10) & 0x1F;
        let mant = u32::from(self.0 & 0x03FF);
        let bits = match (exp, mant) {
            (0, 0) => sign,
            (0, m) => {
                // Subnormal: value is mant * 2^-24, exact in f32.
                let v = (m as f32) * (2.0f32).powi(-24);
                sign | v.to_bits()
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Rounds an `f32` through half precision and back.
    ///
    /// This is the operation applied to every tensor-core `A`/`B` operand in
    /// the functional simulator.
    pub fn round_trip(value: f32) -> f32 {
        F16::from_f32(value).to_f32()
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(F16::round_trip(x), x, "integer {i} must be exact in f16");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let x = (2.0f32).powi(e);
            assert_eq!(F16::round_trip(x), x);
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(1.0e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1.0e6).to_f32(), f32::NEG_INFINITY);
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        // Halfway above MAX rounds to infinity.
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal is 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(F16::round_trip(tiny), tiny);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(F16::round_trip((2.0f32).powi(-26)), 0.0);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        assert!(!F16::from_f32(1.0).is_nan());
        assert!(!F16::INFINITY.is_nan());
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 sits exactly between 1.0 and 1 + 2^-10: ties to even (1.0).
        let tie = 1.0 + (2.0f32).powi(-11);
        assert_eq!(F16::round_trip(tie), 1.0);
        // (1 + 2^-10) + 2^-11 ties up to 1 + 2^-9 (even mantissa).
        let tie_up = 1.0 + (2.0f32).powi(-10) + (2.0f32).powi(-11);
        assert_eq!(F16::round_trip(tie_up), 1.0 + (2.0f32).powi(-9));
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
    }

    #[test]
    fn exhaustive_f16_to_f32_to_f16_identity() {
        // Every finite half value must survive a round trip through f32.
        for bits in 0..=0xFFFFu16 {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
        }
    }
}
