//! Dense `NHWC` tensors.

use crate::{F16, Nhwc};
use duplo_testkit::Rng;
use std::fmt;

/// An owned, dense, row-major tensor in `NHWC` layout with `f32` storage.
///
/// # Examples
///
/// ```
/// use duplo_tensor::{Nhwc, Tensor4};
///
/// let mut t = Tensor4::zeros(Nhwc::new(1, 2, 2, 1));
/// t.set(0, 1, 1, 0, 3.5);
/// assert_eq!(t.get(0, 1, 1, 0), 3.5);
/// assert_eq!(t.as_slice().iter().sum::<f32>(), 3.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor4 {
    shape: Nhwc,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: Nhwc) -> Tensor4 {
        Tensor4 {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a tensor by evaluating `f(n, h, w, c)` for every element.
    pub fn from_fn<F>(shape: Nhwc, mut f: F) -> Tensor4
    where
        F: FnMut(usize, usize, usize, usize) -> f32,
    {
        let mut data = Vec::with_capacity(shape.len());
        for n in 0..shape.n {
            for h in 0..shape.h {
                for w in 0..shape.w {
                    for c in 0..shape.c {
                        data.push(f(n, h, w, c));
                    }
                }
            }
        }
        Tensor4 { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Nhwc, data: Vec<f32>) -> Tensor4 {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor4 { shape, data }
    }

    /// Fills the tensor with uniform random values in `[-1, 1)` that are
    /// exactly representable in half precision, so f16 round-trips are
    /// lossless in functional cross-checks. Deterministic for a given
    /// [`Rng`] seed (used by tests, benches and examples).
    pub fn fill_random(&mut self, rng: &mut Rng) {
        for v in &mut self.data {
            let raw: f32 = rng.gen_range(-1.0f32..1.0);
            *v = F16::round_trip(raw);
        }
    }

    /// Returns the shape.
    pub fn shape(&self) -> Nhwc {
        self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `(n, h, w, c)`.
    #[inline]
    pub fn get(&self, n: usize, h: usize, w: usize, c: usize) -> f32 {
        self.data[self.shape.index(n, h, w, c)]
    }

    /// Writes element `(n, h, w, c)`.
    #[inline]
    pub fn set(&mut self, n: usize, h: usize, w: usize, c: usize, value: f32) {
        let idx = self.shape.index(n, h, w, c);
        self.data[idx] = value;
    }

    /// Reads `(n, h, w, c)` treating out-of-bounds spatial coordinates as
    /// zero padding. `h` and `w` are signed to allow negative (padded)
    /// positions; `n` and `c` must be in range.
    #[inline]
    pub fn get_padded(&self, n: usize, h: isize, w: isize, c: usize) -> f32 {
        if h < 0 || w < 0 || h as usize >= self.shape.h || w as usize >= self.shape.w {
            0.0
        } else {
            self.get(n, h as usize, w as usize, c)
        }
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Rounds every element through half precision in place, mirroring a
    /// store to a half-precision buffer.
    pub fn quantize_f16(&mut self) {
        for v in &mut self.data {
            *v = F16::round_trip(*v);
        }
    }
}

impl fmt::Debug for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor4({} elements, shape {})",
            self.data.len(),
            self.shape
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_matches_get() {
        let s = Nhwc::new(2, 3, 3, 2);
        let t = Tensor4::from_fn(s, |n, h, w, c| (n * 1000 + h * 100 + w * 10 + c) as f32);
        assert_eq!(t.get(1, 2, 0, 1), 1201.0);
        assert_eq!(t.get(0, 0, 2, 0), 20.0);
    }

    #[test]
    fn padded_reads_return_zero_outside() {
        let s = Nhwc::new(1, 2, 2, 1);
        let t = Tensor4::from_fn(s, |_, _, _, _| 7.0);
        assert_eq!(t.get_padded(0, -1, 0, 0), 0.0);
        assert_eq!(t.get_padded(0, 0, 2, 0), 0.0);
        assert_eq!(t.get_padded(0, 1, 1, 0), 7.0);
    }

    #[test]
    fn random_fill_is_f16_exact_and_deterministic() {
        let s = Nhwc::new(1, 4, 4, 4);
        let mut a = Tensor4::zeros(s);
        let mut b = Tensor4::zeros(s);
        a.fill_random(&mut Rng::seed_from_u64(42));
        b.fill_random(&mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
        for &v in a.as_slice() {
            assert_eq!(F16::round_trip(v), v, "fill must be f16-exact");
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Tensor4::from_vec(Nhwc::new(1, 2, 2, 1), vec![0.0; 3]);
    }
}
