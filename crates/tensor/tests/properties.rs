//! Property-based tests of the tensor substrate: f16 conversion laws,
//! shape index bijectivity, and matrix algebra identities.

use duplo_tensor::{F16, Matrix, Nhwc, Tensor4, approx_eq};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Rounding through f16 is idempotent.
    #[test]
    fn f16_round_trip_idempotent(x in -1.0e5f32..1.0e5) {
        let once = F16::round_trip(x);
        let twice = F16::round_trip(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    /// f16 conversion is monotone on finite values.
    #[test]
    fn f16_conversion_monotone(a in -6.0e4f32..6.0e4, b in -6.0e4f32..6.0e4) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::round_trip(lo) <= F16::round_trip(hi));
    }

    /// Rounding error is bounded by half a ULP (2^-11 relative) in the
    /// normal range.
    #[test]
    fn f16_error_bounded(x in 0.001f32..6.0e4) {
        let r = F16::round_trip(x);
        let rel = ((r - x) / x).abs();
        prop_assert!(rel <= (2.0f32).powi(-11), "x={x} r={r} rel={rel}");
    }

    /// Negation commutes with conversion.
    #[test]
    fn f16_negation_symmetric(x in -6.0e4f32..6.0e4) {
        prop_assert_eq!(F16::round_trip(-x), -F16::round_trip(x));
    }

    /// index/coords are inverse bijections over the whole shape.
    #[test]
    fn shape_index_bijective(
        n in 1usize..4, h in 1usize..6, w in 1usize..6, c in 1usize..6,
        pick in 0usize..10_000,
    ) {
        let s = Nhwc::new(n, h, w, c);
        let idx = pick % s.len();
        let (a, b, cc, d) = s.coords(idx);
        prop_assert_eq!(s.index(a, b, cc, d), idx);
    }

    /// Matrix multiplication distributes over addition of the rhs
    /// (checked against naive evaluation).
    #[test]
    fn matmul_matches_naive(
        m in 1usize..12, k in 1usize..16, n in 1usize..12, seed in 0u64..100
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0..1.0));
        let fast = a.matmul(&b);
        let slow = a.matmul_naive(&b);
        prop_assert!(approx_eq(fast.as_slice(), slow.as_slice(), 1e-4));
    }

    /// (A * B)^T == B^T * A^T.
    #[test]
    fn transpose_of_product(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..100
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0..1.0));
        let lhs = a.matmul_naive(&b).transpose();
        let rhs = b.transpose().matmul_naive(&a.transpose());
        prop_assert!(approx_eq(lhs.as_slice(), rhs.as_slice(), 1e-4));
    }

    /// Tensor from_fn/get agree on arbitrary coordinates.
    #[test]
    fn tensor_from_fn_get(
        n in 1usize..3, h in 1usize..5, w in 1usize..5, c in 1usize..5,
        pick in 0usize..10_000,
    ) {
        let s = Nhwc::new(n, h, w, c);
        let t = Tensor4::from_fn(s, |a, b, cc, d| (a * 7 + b * 5 + cc * 3 + d) as f32);
        let idx = pick % s.len();
        let (a, b, cc, d) = s.coords(idx);
        prop_assert_eq!(t.get(a, b, cc, d), (a * 7 + b * 5 + cc * 3 + d) as f32);
        prop_assert_eq!(t.as_slice()[idx], t.get(a, b, cc, d));
    }
}
