//! Property-based tests of the tensor substrate: f16 conversion laws,
//! shape index bijectivity, and matrix algebra identities.
//!
//! Runs on the hermetic `duplo_testkit::prop` runner; set `DUPLO_TEST_SEED`
//! to reproduce a failure (the panic message prints the seed to use).

use duplo_tensor::{F16, Matrix, Nhwc, Tensor4, approx_eq};
use duplo_testkit::prop::check;
use duplo_testkit::{Rng, require, require_eq};

/// Rounding through f16 is idempotent.
#[test]
fn f16_round_trip_idempotent() {
    check(
        "f16_round_trip_idempotent",
        256,
        |rng| Some(rng.gen_range(-1.0e5f32..1.0e5)),
        |&x| {
            let once = F16::round_trip(x);
            let twice = F16::round_trip(once);
            require_eq!(once.to_bits(), twice.to_bits());
            Ok(())
        },
    );
}

/// f16 conversion is monotone on finite values.
#[test]
fn f16_conversion_monotone() {
    check(
        "f16_conversion_monotone",
        256,
        |rng| {
            Some((
                rng.gen_range(-6.0e4f32..6.0e4),
                rng.gen_range(-6.0e4f32..6.0e4),
            ))
        },
        |&(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            require!(F16::round_trip(lo) <= F16::round_trip(hi));
            Ok(())
        },
    );
}

/// Rounding error is bounded by half a ULP (2^-11 relative) in the
/// normal range.
#[test]
fn f16_error_bounded() {
    check(
        "f16_error_bounded",
        256,
        |rng| Some(rng.gen_range(0.001f32..6.0e4)),
        |&x| {
            let r = F16::round_trip(x);
            let rel = ((r - x) / x).abs();
            require!(rel <= (2.0f32).powi(-11), "x={x} r={r} rel={rel}");
            Ok(())
        },
    );
}

/// Negation commutes with conversion.
#[test]
fn f16_negation_symmetric() {
    check(
        "f16_negation_symmetric",
        256,
        |rng| Some(rng.gen_range(-6.0e4f32..6.0e4)),
        |&x| {
            require_eq!(F16::round_trip(-x), -F16::round_trip(x));
            Ok(())
        },
    );
}

/// index/coords are inverse bijections over the whole shape.
#[test]
fn shape_index_bijective() {
    check(
        "shape_index_bijective",
        256,
        |rng| {
            Some((
                rng.gen_range(1usize..4),
                rng.gen_range(1usize..6),
                rng.gen_range(1usize..6),
                rng.gen_range(1usize..6),
                rng.gen_range(0usize..10_000),
            ))
        },
        |&(n, h, w, c, pick)| {
            let s = Nhwc::new(n, h, w, c);
            let idx = pick % s.len();
            let (a, b, cc, d) = s.coords(idx);
            require_eq!(s.index(a, b, cc, d), idx);
            Ok(())
        },
    );
}

/// Blocked matmul agrees with naive evaluation on random shapes.
#[test]
fn matmul_matches_naive() {
    check(
        "matmul_matches_naive",
        256,
        |rng| {
            Some((
                rng.gen_range(1usize..12),
                rng.gen_range(1usize..16),
                rng.gen_range(1usize..12),
                rng.gen_range(0u64..100),
            ))
        },
        |&(m, k, n, seed)| {
            let mut rng = Rng::seed_from_u64(seed);
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f32..1.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f32..1.0));
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            require!(approx_eq(fast.as_slice(), slow.as_slice(), 1e-4));
            Ok(())
        },
    );
}

/// (A * B)^T == B^T * A^T.
#[test]
fn transpose_of_product() {
    check(
        "transpose_of_product",
        256,
        |rng| {
            Some((
                rng.gen_range(1usize..8),
                rng.gen_range(1usize..8),
                rng.gen_range(1usize..8),
                rng.gen_range(0u64..100),
            ))
        },
        |&(m, k, n, seed)| {
            let mut rng = Rng::seed_from_u64(seed);
            let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-1.0f32..1.0));
            let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-1.0f32..1.0));
            let lhs = a.matmul_naive(&b).transpose();
            let rhs = b.transpose().matmul_naive(&a.transpose());
            require!(approx_eq(lhs.as_slice(), rhs.as_slice(), 1e-4));
            Ok(())
        },
    );
}

/// Tensor from_fn/get agree on arbitrary coordinates.
#[test]
fn tensor_from_fn_get() {
    check(
        "tensor_from_fn_get",
        256,
        |rng| {
            Some((
                rng.gen_range(1usize..3),
                rng.gen_range(1usize..5),
                rng.gen_range(1usize..5),
                rng.gen_range(1usize..5),
                rng.gen_range(0usize..10_000),
            ))
        },
        |&(n, h, w, c, pick)| {
            let s = Nhwc::new(n, h, w, c);
            let t = Tensor4::from_fn(s, |a, b, cc, d| (a * 7 + b * 5 + cc * 3 + d) as f32);
            let idx = pick % s.len();
            let (a, b, cc, d) = s.coords(idx);
            require_eq!(t.get(a, b, cc, d), (a * 7 + b * 5 + cc * 3 + d) as f32);
            require_eq!(t.as_slice()[idx], t.get(a, b, cc, d));
            Ok(())
        },
    );
}
