//! Cross-crate functional integration: every convolution method agrees
//! with the direct reference on randomized workloads, including the Table I
//! layer geometries (scaled down where the full layers would be slow).

use duplo_conv::{ConvParams, direct, fft, gemm, layers, transposed, winograd};
use duplo_tensor::{Nhwc, Tensor4, approx_eq};
use duplo_testkit::Rng;

fn random_pair(p: &ConvParams, seed: u64) -> (Tensor4, Tensor4) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut input = Tensor4::zeros(p.input);
    input.fill_random(&mut rng);
    let mut filters = Tensor4::zeros(p.filter_shape());
    filters.fill_random(&mut rng);
    (input, filters)
}

/// Shrinks a Table I layer to a testable size (batch 1, fewer channels and
/// filters, smaller spatial dims) while keeping filter/stride/pad geometry.
fn shrink(p: &ConvParams) -> ConvParams {
    let h = p.input.h.min(14).max(p.fh);
    let w = p.input.w.min(14).max(p.fw);
    ConvParams::new(
        Nhwc::new(1, h, w, p.input.c.min(8)),
        p.filters.min(8),
        p.fh,
        p.fw,
        p.pad,
        p.stride,
    )
    .expect("shrunk layer valid")
}

#[test]
fn gemm_matches_direct_on_all_table1_geometries() {
    for (i, layer) in layers::all_layers().iter().enumerate() {
        let p = shrink(&layer.lowered());
        let (input, filters) = random_pair(&p, i as u64);
        let d = direct::convolve(&p, &input, &filters);
        let g = gemm::convolve(&p, &input, &filters);
        assert!(
            approx_eq(d.as_slice(), g.as_slice(), 1e-3),
            "{} ({p})",
            layer.qualified_name()
        );
    }
}

#[test]
fn implicit_gemm_matches_direct_on_all_table1_geometries() {
    for (i, layer) in layers::all_layers().iter().enumerate() {
        let p = shrink(&layer.lowered());
        let (input, filters) = random_pair(&p, 100 + i as u64);
        let d = direct::convolve(&p, &input, &filters);
        let g = gemm::convolve_implicit(&p, &input, &filters);
        assert!(
            approx_eq(d.as_slice(), g.as_slice(), 1e-3),
            "{} ({p})",
            layer.qualified_name()
        );
    }
}

#[test]
fn winograd_matches_direct_where_applicable() {
    let mut checked = 0;
    for (i, layer) in layers::all_layers().iter().enumerate() {
        let p = shrink(&layer.lowered());
        if winograd::check_applicable(&p).is_err() {
            continue;
        }
        let (input, filters) = random_pair(&p, 200 + i as u64);
        let d = direct::convolve(&p, &input, &filters);
        let w = winograd::convolve(&p, &input, &filters).unwrap();
        assert!(
            approx_eq(d.as_slice(), w.as_slice(), 1e-2),
            "{} ({p})",
            layer.qualified_name()
        );
        checked += 1;
    }
    assert!(
        checked >= 6,
        "expected many Winograd-eligible layers, got {checked}"
    );
}

#[test]
fn fft_matches_direct_where_applicable() {
    let mut checked = 0;
    for (i, layer) in layers::all_layers().iter().enumerate() {
        let p = shrink(&layer.lowered());
        if fft::check_applicable(&p).is_err() {
            continue;
        }
        let (input, filters) = random_pair(&p, 300 + i as u64);
        let d = direct::convolve(&p, &input, &filters);
        let f = fft::convolve(&p, &input, &filters).unwrap();
        assert!(
            approx_eq(d.as_slice(), f.as_slice(), 1e-2),
            "{} ({p})",
            layer.qualified_name()
        );
        checked += 1;
    }
    assert!(
        checked >= 6,
        "expected many FFT-eligible layers, got {checked}"
    );
}

#[test]
fn gan_generator_chain_composes() {
    // Drive a shrunk TC chain end-to-end: each transposed layer upsamples
    // 2x, and the lowered path equals the independent scatter reference.
    let mut rng = Rng::seed_from_u64(9);
    let mut x = Tensor4::zeros(Nhwc::new(1, 4, 4, 8));
    x.fill_random(&mut rng);
    for step in 0..2 {
        let c_in = x.shape().c;
        let c_out = (c_in / 2).max(2);
        let t = transposed::TransposedConvParams::new(x.shape(), c_out, 5, 5, 2, 2).unwrap();
        let mut filters = Tensor4::zeros(Nhwc::new(c_out, 5, 5, c_in));
        filters.fill_random(&mut rng);
        let a = transposed::convolve(&t, &x, &filters);
        let b = transposed::convolve_scatter(&t, &x, &filters);
        assert!(approx_eq(a.as_slice(), b.as_slice(), 1e-2), "step {step}");
        assert_eq!(a.shape().h, 2 * x.shape().h);
        x = a;
    }
    assert_eq!(x.shape(), Nhwc::new(1, 16, 16, 2));
}

#[test]
fn f16_pipeline_matches_f32_for_f16_exact_inputs() {
    let p = ConvParams::new(Nhwc::new(2, 10, 10, 4), 4, 3, 3, 1, 1).unwrap();
    let (input, filters) = random_pair(&p, 77);
    let a = gemm::convolve(&p, &input, &filters);
    let b = gemm::convolve_f16(&p, &input, &filters);
    assert!(approx_eq(a.as_slice(), b.as_slice(), 1e-3));
}
