//! The reproduction's most important end-to-end check: every register
//! renaming the *timing simulator* performs must be value-correct.
//!
//! We run a real convolutional layer's lowered GEMM through the full SM
//! pipeline with the rename log enabled. Each log entry pairs the address a
//! physical row was filled from with the address a later (eliminated) load
//! wanted. Materializing the actual workspace values, the 16-element
//! segments at both addresses must be identical — otherwise Duplo would
//! have corrupted the computation.

use duplo_conv::{ConvParams, lowering};
use duplo_core::LhbConfig;
use duplo_isa::Kernel as _;
use duplo_kernels::{A_BASE, GemmTcKernel, SmemPolicy};
use duplo_sim::GpuConfig;
use duplo_sm::run_kernel;
use duplo_tensor::{Nhwc, Tensor4};
use duplo_testkit::Rng;

fn segment_values(
    params: &ConvParams,
    input: &Tensor4,
    k_pad: usize,
    addr: u64,
) -> Option<Vec<f32>> {
    let row_len = params.gemm_dims().2;
    let idx = ((addr - A_BASE) / 2) as usize;
    let (row, col) = (idx / k_pad, idx % k_pad);
    let mut out = Vec::with_capacity(16);
    for off in 0..16 {
        let c = col + off;
        if c >= row_len {
            return None; // tile padding — never renamed, but be safe
        }
        out.push(lowering::workspace_value(params, input, row, c));
    }
    Some(out)
}

fn check_layer(params: ConvParams, lhb: LhbConfig) -> (usize, u64) {
    let kernel = GemmTcKernel::from_conv(&params, SmemPolicy::COnly);
    let (_, _, k_pad) = kernel.padded_dims();
    let mut cfg = GpuConfig::titan_v().sm;
    cfg.lhb = Some(lhb);
    cfg.rename_log_cap = 100_000;
    let ctas: Vec<usize> = (0..kernel.num_ctas().min(6)).collect();
    let stats = run_kernel(&kernel, &ctas, cfg);

    let mut rng = Rng::seed_from_u64(1234);
    let mut input = Tensor4::zeros(params.input);
    input.fill_random(&mut rng);

    let mut checked = 0;
    for &(src, dst) in &stats.rename_pairs {
        let a = segment_values(&params, &input, k_pad, src);
        let b = segment_values(&params, &input, k_pad, dst);
        assert!(a.is_some() && b.is_some(), "rename touched tile padding");
        assert_eq!(a, b, "renamed segment differs: {src:#x} vs {dst:#x}");
        checked += 1;
    }
    (checked, stats.eliminated_loads)
}

#[test]
fn renames_are_value_correct_unit_stride() {
    let p = ConvParams::new(Nhwc::new(1, 16, 16, 16), 16, 3, 3, 1, 1).unwrap();
    let (checked, eliminated) = check_layer(p, LhbConfig::paper_default());
    assert!(
        eliminated > 100,
        "expected substantial elimination, got {eliminated}"
    );
    assert!(
        checked as u64 == eliminated,
        "every elimination must be logged and checked"
    );
}

#[test]
fn renames_are_value_correct_strided_padded() {
    let p = ConvParams::new(Nhwc::new(2, 16, 16, 16), 32, 5, 5, 2, 2).unwrap();
    let (checked, _) = check_layer(p, LhbConfig::paper_default());
    // Strided 5x5 still produces some duplicates; all must check out.
    assert!(checked > 0 || p.stride > 1, "soundness check exercised");
}

#[test]
fn renames_are_value_correct_oracle_and_assoc() {
    let p = ConvParams::new(Nhwc::new(1, 16, 16, 16), 16, 3, 3, 1, 1).unwrap();
    for lhb in [LhbConfig::oracle(), LhbConfig::set_associative(512, 4)] {
        let (checked, eliminated) = check_layer(p, lhb);
        assert_eq!(checked as u64, eliminated);
    }
}

#[test]
fn renames_are_value_correct_on_resnet_c2_sample() {
    // A slice of the real ResNet C2 layer.
    let p = ConvParams::new(Nhwc::new(8, 56, 56, 64), 64, 3, 3, 1, 1).unwrap();
    let (checked, eliminated) = check_layer(p, LhbConfig::paper_default());
    assert!(eliminated > 1000, "got {eliminated}");
    assert_eq!(checked as u64, eliminated);
}
