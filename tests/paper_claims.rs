//! Sampled end-to-end checks of the paper's qualitative claims ("shape"
//! checks — who wins and in which direction, not absolute numbers).
//! Heavier sweeps live in the experiment binaries.

use duplo_conv::{ids, layers};
use duplo_core::LhbConfig;
use duplo_sim::experiments::{RunOptions, size_configs, sweep_layers};
use duplo_sim::{GpuConfig, layer_run};

fn opts() -> RunOptions {
    RunOptions {
        sample_ctas: Some(3),
        ..RunOptions::default()
    }
}

/// §V-B: Duplo improves performance on duplication-heavy layers, and the
/// improvement grows (weakly) with LHB size up to the oracle.
#[test]
fn lhb_size_monotonicity_on_unit_stride_layers() {
    let picks = vec![layers::resnet()[1].clone(), layers::yolo()[2].clone()];
    for sweep in sweep_layers(&picks, &size_configs(), &opts()) {
        let oracle = sweep.improvement(4);
        let big = sweep.improvement(3);
        let small = sweep.improvement(0);
        assert!(oracle > 0.05, "{}: oracle {:.3}", sweep.layer, oracle);
        assert!(
            big >= small - 0.02,
            "{}: 2048 {big:.3} vs 256 {small:.3}",
            sweep.layer
        );
        // The oracle pins more physical registers (entries never conflict
        // away), so a large finite LHB can edge it out by a few points.
        assert!(
            oracle >= big - 0.06,
            "{}: oracle {oracle:.3} vs 2048 {big:.3}",
            sweep.layer
        );
    }
}

/// §V-C: the hit rate can never exceed the duplication census ceiling, and
/// no duplication exists across batch images.
#[test]
fn hit_rates_bounded_by_census() {
    let layer = layers::resnet()[1].clone();
    let census = ids::census(&layer.lowered(), 16);
    let sweeps = sweep_layers(&[layer], &size_configs(), &opts());
    for i in 0..sweeps[0].runs.len() {
        let hr = sweeps[0].hit_rate(i);
        assert!(
            hr <= census.max_hit_rate() + 0.02,
            "config {i}: hit rate {hr:.3} exceeds ceiling {:.3}",
            census.max_hit_rate()
        );
    }
}

/// §V-D: Duplo reduces DRAM traffic and shifts service share into the LHB.
#[test]
fn dram_traffic_reduction() {
    let gpu = opts().apply(GpuConfig::titan_v());
    let p = layers::yolo()[2].lowered();
    let base = layer_run(&p, None, &gpu);
    let duplo = layer_run(&p, Some(LhbConfig::paper_default()), &gpu);
    assert!(
        duplo.stats.mem.dram_bytes < base.stats.mem.dram_bytes,
        "duplo DRAM {} !< baseline {}",
        duplo.stats.mem.dram_bytes,
        base.stats.mem.dram_bytes
    );
    assert!(duplo.stats.services.lhb > 0);
}

/// §V-F: growing the batch with a fixed LHB does not increase the
/// improvement for layers whose workspace already exceeds LHB coverage.
#[test]
fn large_batches_do_not_help_fixed_lhb() {
    let layer = &layers::yolo()[2];
    let gpu = opts().apply(GpuConfig::titan_v());
    let lhb = LhbConfig::paper_default();
    let imp = |batch: usize| {
        let p = layer.with_batch(batch).lowered();
        let b = layer_run(&p, None, &gpu);
        let d = layer_run(&p, Some(lhb), &gpu);
        b.cycles / d.cycles - 1.0
    };
    let i8 = imp(8);
    let i32 = imp(32);
    assert!(
        i32 <= i8 + 0.08,
        "batch 32 ({i32:.3}) should not outgain batch 8 ({i8:.3}) materially"
    );
}

/// §IV-D: the compiler-only tag alternative needs tens of gigabytes.
#[test]
fn compiler_only_tag_storage_is_enormous() {
    // YOLO C2: ~6.8M tensor-core loads x 32-bit tags.
    let p = layers::yolo()[1].lowered();
    let (m, _, k) = p.gemm_dims();
    let loads = (m as u64) * (k as u64).div_ceil(16);
    let tag_bytes = loads * 4;
    assert!(
        tag_bytes > 4 << 30 || loads > 1_000_000,
        "tag storage must be impractical: {tag_bytes} bytes"
    );
}

/// Determinism: the whole pipeline is reproducible bit-for-bit.
#[test]
fn experiment_runs_are_deterministic() {
    let gpu = opts().apply(GpuConfig::titan_v());
    let p = layers::resnet()[1].lowered();
    let a = layer_run(&p, Some(LhbConfig::paper_default()), &gpu);
    let b = layer_run(&p, Some(LhbConfig::paper_default()), &gpu);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.stats.lhb.hits, b.stats.lhb.hits);
    assert_eq!(a.stats.mem.dram_bytes, b.stats.mem.dram_bytes);
}
