//! Leak regression on the *real* registry kernels: run the paper's GEMM
//! and implicit-GEMM generators through the full SM under an artificially
//! small physical register file, forcing the `force_retire` pressure path
//! on both the global and the shared-memory (implicit-GEMM, §V-D) Duplo
//! routes, and assert the register file drains to exactly zero rows.
//!
//! The old shared-path bug dropped the row re-allocated after
//! `force_retire` (refcount 1, released by nobody), so `rf_final_rows`
//! ended nonzero whenever the shared path saw pressure — this test would
//! have caught it.
//!
//! Sizing: a single CTA with `commit_delay` longer than the kernel, so no
//! load retires naturally and the LHB's pinned history alone pushes
//! occupancy to its capacity-bounded plateau; the cap sits just below that
//! plateau (pressure guaranteed) but far above the warps' live binding
//! demand (the irreclaimable floor), so `force_retire` can always reclaim
//! history rows and the run cannot deadlock.

use duplo_conv::ConvParams;
use duplo_core::LhbConfig;
use duplo_isa::Kernel;
use duplo_kernels::{GemmTcKernel, ImplicitGemmKernel, SmemPolicy};
use duplo_sim::GpuConfig;
use duplo_sm::run_kernel;
use duplo_tensor::Nhwc;

/// A ResNet-C2-like layer: K = 576 gives each warp a long k-loop, so the
/// LHB-pinned load history dwarfs the live binding demand.
fn layer() -> ConvParams {
    ConvParams::new(Nhwc::new(1, 56, 56, 64), 64, 3, 3, 1, 1).unwrap()
}

/// Runs one CTA of `kernel` under a `rows`-row register file with
/// effectively infinite commit delay and checks the pressure path ran
/// (the file filled to the cap) and still drained to zero.
fn pressured_run<K: Kernel>(kernel: &K, rows: u32, shared: bool) {
    let mut cfg = GpuConfig::titan_v().sm;
    cfg.regfile_bytes = rows as usize * 32;
    cfg.commit_delay = 1 << 20;
    cfg.lhb = Some(LhbConfig::paper_default());
    cfg.lhb_on_shared = shared;
    let stats = run_kernel(kernel, &[0], cfg);
    assert_eq!(
        stats.rf_peak_rows,
        rows,
        "{}: register file must fill so the pressure path runs",
        kernel.name()
    );
    assert_eq!(
        stats.rf_final_rows,
        0,
        "{}: physical rows leaked under pressure",
        kernel.name()
    );
}

/// Explicit GEMM (paper baseline, C-only staging): tensor loads stream
/// from global, so pressure exercises the global Duplo route. The
/// unpressured single-CTA plateau is 1023 rows; 960 forces pressure.
#[test]
fn gemm_tc_kernel_drains_under_rf_pressure() {
    let kernel = GemmTcKernel::from_conv(&layer(), SmemPolicy::COnly);
    pressured_run(&kernel, 960, false);
}

/// Implicit GEMM with `lhb_on_shared`: every tensor load hits shared
/// memory with workspace identity, so pressure exercises exactly the
/// `process_tensor_row_shared` path the leak lived on. The unpressured
/// plateau is 925 rows; 850 forces pressure.
#[test]
fn implicit_gemm_shared_path_drains_under_rf_pressure() {
    let kernel = ImplicitGemmKernel::from_conv(&layer());
    pressured_run(&kernel, 850, true);
}

/// Unpressured control: with the full Titan V file the same kernels never
/// fill the RF and trivially drain — pinning that the pressure runs above
/// really took a different path.
#[test]
fn registry_kernels_drain_without_pressure() {
    for (kernel, shared) in [
        (
            Box::new(GemmTcKernel::from_conv(&layer(), SmemPolicy::COnly)) as Box<dyn Kernel>,
            false,
        ),
        (
            Box::new(ImplicitGemmKernel::from_conv(&layer())) as Box<dyn Kernel>,
            true,
        ),
    ] {
        let mut cfg = GpuConfig::titan_v().sm;
        cfg.lhb = Some(LhbConfig::paper_default());
        cfg.lhb_on_shared = shared;
        let ctas: Vec<usize> = (0..kernel.num_ctas().min(2)).collect();
        let stats = run_kernel(kernel.as_ref(), &ctas, cfg.clone());
        assert!(stats.rf_peak_rows < cfg.regfile_rows(), "{}", kernel.name());
        assert_eq!(stats.rf_final_rows, 0, "{}", kernel.name());
    }
}
